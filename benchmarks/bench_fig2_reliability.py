"""Figure 2 — average reliability vs. failure percentage (the headline).

Paper (Section 5.2, 10 000 nodes, 1 000 messages per level): massive
failures have almost no visible impact on HyParView below 90%; at 95% it
still delivers to ~90% of survivors.  Cyclon and Scamp degrade from the
start and collapse above 50%; CyclonAcked is competitive up to ~70% but
cannot match HyParView at 80%+ because its overlay is asymmetric.
"""

from conftest import run_once

from repro.experiments.failures import (
    FIGURE2_FRACTIONS,
    PAPER_PROTOCOLS,
    run_failure_experiment,
)
from repro.experiments.reporting import format_table


def bench_fig2_reliability_sweep(benchmark, cache, params, message_count, emit):
    def experiment():
        results = {}
        for protocol in PAPER_PROTOCOLS:
            base = cache.base(protocol)
            for fraction in FIGURE2_FRACTIONS:
                results[(protocol, fraction)] = run_failure_experiment(
                    protocol, params, fraction, messages=message_count, base=base
                )
        return results

    results = run_once(benchmark, experiment)

    headers = ["failure %"] + list(PAPER_PROTOCOLS)
    rows = []
    for fraction in FIGURE2_FRACTIONS:
        rows.append(
            [f"{fraction:.0%}"]
            + [results[(protocol, fraction)].average for protocol in PAPER_PROTOCOLS]
        )
    emit(
        "fig2_reliability",
        format_table(
            headers,
            rows,
            title=(
                f"Figure 2 — avg reliability of {message_count} msgs vs failure % "
                f"(n={params.n})"
            ),
        ),
    )

    get = lambda protocol, fraction: results[(protocol, fraction)].average
    # Paper shape 1: HyParView is essentially unaffected below 90%.
    for fraction in (0.1, 0.3, 0.5, 0.7, 0.8):
        assert get("hyparview", fraction) > 0.95
    # Paper shape 2: HyParView still delivers to most survivors at 90-95%.
    assert get("hyparview", 0.9) > 0.8
    assert get("hyparview", 0.95) > 0.5
    # Paper shape 3: protocol ordering after heavy failures.
    for fraction in (0.5, 0.6, 0.7):
        assert get("hyparview", fraction) >= get("cyclon-acked", fraction) - 0.02
        assert get("cyclon-acked", fraction) > get("cyclon", fraction)
        assert get("cyclon", fraction) > get("scamp", fraction) - 0.05
    # Paper shape 4: baselines collapse above 50% while HyParView holds.
    assert get("cyclon", 0.7) < 0.5
    assert get("scamp", 0.7) < 0.5
    # Paper shape 5: CyclonAcked cannot match HyParView at 80%.
    assert get("hyparview", 0.8) - get("cyclon-acked", 0.8) > 0.2
