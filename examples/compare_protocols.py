#!/usr/bin/env python
"""Protocol shoot-out: HyParView vs CyclonAcked vs Cyclon vs Scamp.

Run:  python examples/compare_protocols.py

A miniature of the paper's Figure 2: every protocol is stabilised on an
identical-size system, the same fraction of nodes is crashed, and the same
number of messages measured.  Prints the comparison table plus each
protocol's recovery curve.
"""

from repro import ExperimentParams, Scenario
from repro.experiments.failures import PAPER_PROTOCOLS, run_failure_experiment
from repro.experiments.reporting import format_table, sparkline

N = 300
MESSAGES = 50
FAILURES = (0.3, 0.6, 0.8)


def main() -> None:
    params = ExperimentParams.scaled(N, seed=3, stabilization_cycles=20)
    print(f"comparing {', '.join(PAPER_PROTOCOLS)} at n={N} "
          f"({MESSAGES} msgs per cell)\n")

    results = {}
    for protocol in PAPER_PROTOCOLS:
        print(f"  stabilising {protocol} ...")
        scenario = Scenario(protocol, params)
        scenario.build_overlay()
        scenario.stabilize()
        for fraction in FAILURES:
            results[(protocol, fraction)] = run_failure_experiment(
                protocol, params, fraction, MESSAGES, base=scenario
            )

    rows = []
    for fraction in FAILURES:
        rows.append(
            [f"{fraction:.0%}"]
            + [results[(p, fraction)].average for p in PAPER_PROTOCOLS]
        )
    print()
    print(format_table(["failure %"] + list(PAPER_PROTOCOLS), rows,
                       title="average reliability (Figure 2 shape)"))

    print("\nrecovery curves at 60% failures (one char per message):")
    for protocol in PAPER_PROTOCOLS:
        result = results[(protocol, 0.6)]
        print(f"  {protocol:13s} {sparkline(result.series)}  "
              f"tail={result.tail_average(10):.1%}")

    print("\nwhat to look for (the paper's Section 5.2 story):")
    print("  - hyparview: barely dented, recovers within a couple of messages")
    print("  - cyclon-acked: recovers over ~25 messages (ack-driven cleanup)")
    print("  - cyclon/scamp: cannot recover until membership cycles run")


if __name__ == "__main__":
    main()
