#!/usr/bin/env python
"""Plumtree over HyParView: broadcast trees embedded in the active views.

Run:  python examples/plumtree_broadcast.py

HyParView was designed as the membership layer for tree-based epidemic
broadcast (Plumtree, by the same authors).  This example shows why the
pairing matters:

1. flood vs. tree payload traffic on the same overlay size;
2. the PRUNE/GRAFT dance converging the flood into a spanning tree;
3. a node failure breaking the tree and lazy IHAVE links repairing it.
"""

from repro import ExperimentParams, Scenario

N = 250
WARMUP = 5


def payload_count(scenario, type_name):
    return scenario.network.stats.messages_by_type.get(type_name, 0)


def main() -> None:
    params = ExperimentParams.scaled(N, seed=5, stabilization_cycles=15)

    print(f"building twin {N}-node overlays (flood vs plumtree) ...\n")
    flood = Scenario("hyparview", params)
    flood.build_overlay()
    flood.stabilize()

    tree = Scenario("plumtree", params)
    tree.build_overlay()
    tree.stabilize()

    # --- traffic comparison -------------------------------------------
    tree.send_broadcasts(WARMUP)  # PRUNEs converge the tree
    flood.send_broadcasts(WARMUP)

    start_flood = payload_count(flood, "GossipData")
    flood_summaries = flood.send_broadcasts(10)
    flood_payloads = (payload_count(flood, "GossipData") - start_flood) / 10

    start_tree = payload_count(tree, "PlumtreeGossip")
    tree_summaries = tree.send_broadcasts(10)
    tree_payloads = (payload_count(tree, "PlumtreeGossip") - start_tree) / 10

    print("payload messages per broadcast (after tree convergence):")
    print(f"  flood:    {flood_payloads:7.1f}  (~ sum of active views)")
    print(f"  plumtree: {tree_payloads:7.1f}  (~ n-1 tree edges)")
    print(f"  savings:  {1 - tree_payloads / flood_payloads:7.1%}")
    print(f"  reliability: flood {sum(s.reliability for s in flood_summaries)/10:.1%}, "
          f"plumtree {sum(s.reliability for s in tree_summaries)/10:.1%}")

    # --- tree structure -------------------------------------------------
    eager_edges = sum(
        len(tree.broadcast_layer(n).eager_peers) for n in tree.node_ids
    )
    lazy_edges = sum(len(tree.broadcast_layer(n).lazy_peers) for n in tree.node_ids)
    print(f"\ntree structure: {eager_edges} eager (payload) half-edges, "
          f"{lazy_edges} lazy (IHAVE) half-edges")

    # --- failure repair --------------------------------------------------
    print("\ncrashing 15% of nodes; the tree repairs via GRAFT ...")
    tree.fail_fraction(0.15)
    summaries = tree.send_paced_broadcasts(20)
    series = [s.reliability for s in summaries]
    print(f"  reliability during repair: first={series[0]:.1%} "
          f"last={series[-1]:.1%}")
    grafts = sum(tree.broadcast_layer(n).grafts_sent for n in tree.alive_ids())
    print(f"  grafts sent while repairing: {grafts}")


if __name__ == "__main__":
    main()
