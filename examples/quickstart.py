#!/usr/bin/env python
"""Quickstart: build a HyParView overlay, broadcast, inspect the views.

Run:  python examples/quickstart.py

This walks the public API end to end in under a minute:

1. stand up a simulated 200-node system running HyParView + flood
   broadcast (the paper's stack);
2. join every node through one contact and run membership cycles;
3. broadcast a few messages and measure reliability;
4. inspect the overlay: symmetry, degrees, clustering, path lengths.
"""

from repro import ExperimentParams, Scenario

N = 200


def main() -> None:
    # The paper's parameter relations, scaled to a 200-node system
    # (active view 5, passive view ~= 6 ln n, ARWL 6, PRWL 3, fanout 4).
    params = ExperimentParams.scaled(N, seed=7, stabilization_cycles=20)
    print(f"HyParView config: {params.hyparview}")

    scenario = Scenario("hyparview", params)
    scenario.build_overlay()  # nodes join one by one through a contact
    scenario.stabilize()  # periodic shuffles populate passive views
    print(f"built + stabilised a {N}-node overlay "
          f"({scenario.engine.processed} simulated events)")

    # --- broadcast ----------------------------------------------------
    summaries = scenario.send_broadcasts(10)
    reliability = sum(s.reliability for s in summaries) / len(summaries)
    print(f"\n10 broadcasts: average reliability = {reliability:.1%} "
          f"(flooding the symmetric active views is deterministic)")
    print(f"max hops to delivery: {max(s.max_hops for s in summaries)}")

    # --- one node's view of the world ----------------------------------
    node_id = scenario.node_ids[37]
    membership = scenario.membership(node_id)
    print(f"\nnode {node_id}:")
    print(f"  active view  ({len(membership.active)}): "
          + ", ".join(str(p) for p in membership.active_members()))
    print(f"  passive view ({len(membership.passive)}): "
          + ", ".join(str(p) for p in membership.passive_members()[:6]) + ", ...")

    # --- overlay-wide properties (Section 2.3 of the paper) ------------
    snapshot = scenario.snapshot()
    print("\noverlay properties:")
    print(f"  connected:            {snapshot.is_connected()}")
    print(f"  active-view symmetry: {snapshot.symmetry_fraction():.0%}")
    print(f"  avg clustering:       {snapshot.average_clustering():.5f}")
    paths = snapshot.shortest_paths(sample_sources=50)
    print(f"  avg shortest path:    {paths.average:.2f} (max {paths.maximum})")
    histogram = snapshot.in_degree_histogram()
    top = max(histogram, key=histogram.get)
    print(f"  modal in-degree:      {top} ({histogram[top]}/{N} nodes)")


if __name__ == "__main__":
    main()
