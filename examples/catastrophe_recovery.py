#!/usr/bin/env python
"""Catastrophic failure and recovery — the paper's headline scenario.

Run:  python examples/catastrophe_recovery.py [failure_fraction]

Re-enacts Section 5.2/5.3 at laptop scale: a stabilised overlay loses a
large fraction of its nodes at once (the paper motivates this with worms
taking down every machine of one OS, or natural disasters).  We then:

1. stream messages while the overlay repairs itself *reactively* — watch
   per-message reliability collapse and recover (Figure 3's curves);
2. run a few membership cycles and verify full healing (Figure 4).

Try 0.9: HyParView survives the loss of ninety percent of the system.
"""

import sys

from repro import ExperimentParams, Scenario
from repro.experiments.reporting import format_series, sparkline

N = 400
MESSAGES = 60


def main() -> None:
    fraction = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8
    params = ExperimentParams.scaled(N, seed=11, stabilization_cycles=20)

    print(f"building a {N}-node HyParView overlay ...")
    scenario = Scenario("hyparview", params)
    scenario.build_overlay()
    scenario.stabilize()

    baseline = [s.reliability for s in scenario.send_broadcasts(5)]
    print(f"pre-failure reliability: {sum(baseline) / len(baseline):.1%}")

    victims = scenario.fail_fraction(fraction)
    survivors = len(scenario.alive_ids())
    print(f"\n*** {len(victims)} nodes ({fraction:.0%}) just crashed; "
          f"{survivors} survivors ***")

    print(f"\nstreaming {MESSAGES} messages while the overlay repairs itself")
    print("(no membership cycles — only the reactive steps of Section 4.3):")
    series = [s.reliability for s in scenario.send_paced_broadcasts(MESSAGES)]
    print(f"  {sparkline(series)}")
    print(format_series(series))
    tail = series[-10:]
    print(f"  recovered steady state: {sum(tail) / len(tail):.1%} of survivors")

    print("\nrunning 4 membership cycles (the paper heals 90% failures in ~4):")
    scenario.run_cycles(4)
    healed = [s.reliability for s in scenario.send_broadcasts(10)]
    print(f"  post-cycle reliability: {sum(healed) / len(healed):.1%}")

    snapshot = scenario.snapshot()
    print("\noverlay after healing:")
    print(f"  largest component: {snapshot.largest_component_fraction():.1%} of survivors")
    print(f"  symmetry:          {snapshot.symmetry_fraction():.0%}")
    alive = set(scenario.alive_ids())
    stale = sum(
        1
        for node_id in alive
        for peer in scenario.membership(node_id).active_members()
        if peer not in alive
    )
    print(f"  stale active-view entries pointing at dead nodes: {stale}")


if __name__ == "__main__":
    main()
