#!/usr/bin/env python
"""Heterogeneous node degrees — the paper's future-work experiment.

Run:  python examples/heterogeneous_degrees.py

Section 6: "we would also like to experiment our approach with adaptive
fanouts, by taking into account the heterogeneity of nodes ... nodes would
be required to adapt their degree (and in-degree)".

HyParView's symmetric active views make this a *configuration* rather than
a protocol change: give well-provisioned nodes a larger active view and
they naturally take on proportionally more forwarding load, while the
deterministic flood keeps 100% reliability.  This example builds a mixed
overlay with the low-level simulation API (no Scenario helper) — also a
demonstration of wiring the library by hand:

* 80% "small" nodes: active view 4;
* 20% "big" nodes: active view 12 (think well-connected relays);

then measures per-class in-degree and per-class share of forwarding.
"""

from repro.common.ids import simulated_node_ids
from repro.common.rng import SeedSequence
from repro.core.config import HyParViewConfig
from repro.core.protocol import HyParView
from repro.gossip.flood import FloodBroadcast
from repro.gossip.tracker import BroadcastTracker
from repro.metrics.stats import summarize
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import SimNode

N = 300
BIG_FRACTION = 0.2

SMALL = HyParViewConfig(active_view_capacity=4, passive_view_capacity=16, arwl=6, prwl=3)
BIG = HyParViewConfig(active_view_capacity=12, passive_view_capacity=16, arwl=6, prwl=3)


def main() -> None:
    seeds = SeedSequence(21)
    engine = Engine()
    network = Network(engine, seeds=seeds)
    tracker = BroadcastTracker()
    class_rng = seeds.stream("classes")

    memberships: dict = {}
    layers: dict = {}
    classes: dict = {}
    for node_id in simulated_node_ids(N):
        node = SimNode(node_id, network)
        big = class_rng.random() < BIG_FRACTION
        config = BIG if big else SMALL
        membership = HyParView(node.host("membership"), config)
        layer = FloodBroadcast(node.host("gossip"), membership, tracker)
        node.wire("membership", membership)
        node.wire("gossip", layer)
        memberships[node_id], layers[node_id], classes[node_id] = membership, layer, big

    node_ids = list(memberships)
    contact = node_ids[0]
    for node_id in node_ids[1:]:
        memberships[node_id].join(contact)
        engine.run_until_idle()
    order = list(node_ids)
    for _ in range(30):  # stabilisation cycles
        seeds.stream("order").shuffle(order)
        for node_id in order:
            memberships[node_id].cycle()
            engine.run_until_idle()

    big_ids = [n for n in node_ids if classes[n]]
    small_ids = [n for n in node_ids if not classes[n]]
    print(f"{len(big_ids)} big nodes (capacity {BIG.active_view_capacity}), "
          f"{len(small_ids)} small (capacity {SMALL.active_view_capacity})\n")

    in_degree: dict = {n: 0 for n in node_ids}
    for node_id in node_ids:
        for peer in memberships[node_id].active_members():
            in_degree[peer] += 1
    print("in-degree by class (symmetric views => in-degree ~ own capacity):")
    print(f"  big:   {summarize(float(in_degree[n]) for n in big_ids)}")
    print(f"  small: {summarize(float(in_degree[n]) for n in small_ids)}")

    # Forwarding load: deliveries received per node over a message batch.
    received_before = {n: layers[n].delivered_count + layers[n].duplicate_count
                       for n in node_ids}
    rng = seeds.stream("origins")
    message_ids = []
    for _ in range(30):
        origin = rng.choice(node_ids)
        message_ids.append(layers[origin].broadcast(None))
        engine.run_until_idle()
    reliability = [
        tracker.finalize(mid, frozenset(node_ids)).reliability for mid in message_ids
    ]
    load = {
        n: layers[n].delivered_count + layers[n].duplicate_count - received_before[n]
        for n in node_ids
    }
    big_load = sum(load[n] for n in big_ids) / len(big_ids)
    small_load = sum(load[n] for n in small_ids) / len(small_ids)
    print("\nper-node message load over 30 broadcasts:")
    print(f"  big:   {big_load:6.1f} copies received")
    print(f"  small: {small_load:6.1f} copies received")
    print(f"  ratio: {big_load / small_load:.2f}x "
          f"(capacity ratio {BIG.active_view_capacity / SMALL.active_view_capacity:.1f}x)")
    print(f"\nreliability across the batch: {sum(reliability)/len(reliability):.1%} "
          "(deterministic flood is unaffected by heterogeneity)")


if __name__ == "__main__":
    main()
