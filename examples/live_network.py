#!/usr/bin/env python
"""Live network: HyParView over real TCP sockets on localhost.

Run:  python examples/live_network.py

The same protocol classes the simulator runs are wired to the asyncio
transport (:mod:`repro.runtime`) — this is the paper's future-work
deliverable ("an implementation of HyParView will be tested in the
PlanetLab platform") at loopback scale:

1. start 8 real listening processes-worth of nodes in one event loop;
2. join them through a contact, watch active views form;
3. broadcast and verify everyone delivers;
4. crash one node *abruptly* (no goodbye) and watch TCP resets drive the
   failure detection and passive-view promotion of Section 4.3.
"""

import asyncio

from repro.core.config import HyParViewConfig
from repro.runtime.cluster import LocalCluster

SIZE = 8

CONFIG = HyParViewConfig(
    active_view_capacity=4,
    passive_view_capacity=8,
    arwl=4,
    prwl=2,
    neighbor_request_timeout=1.0,
    promotion_retry_delay=0.2,
    promotion_max_passes=10,
)


async def main() -> None:
    cluster = LocalCluster(SIZE, config=CONFIG)
    print(f"starting {SIZE} nodes on loopback TCP ...")
    await cluster.start()
    names = {node.node_id: f"node{i}" for i, node in enumerate(cluster.nodes)}

    await cluster.wait_for_views(minimum=1, timeout=10.0)
    print("\nactive views after join:")
    for i, node in enumerate(cluster.nodes):
        peers = ", ".join(names[p] for p in node.active_view() if p in names)
        print(f"  node{i} ({node.node_id}): [{peers}]")

    print("\nbroadcasting from node0 ...")
    message_id = cluster.nodes[0].broadcast({"event": "hello", "seq": 1})
    count = await cluster.wait_for_delivery(message_id, expected=SIZE, timeout=10.0)
    print(f"  delivered to {count}/{SIZE} nodes")

    victim = cluster.nodes[3]
    print(f"\ncrashing node3 ({victim.node_id}) without warning ...")
    await victim.crash()

    deadline = asyncio.get_running_loop().time() + 10.0
    while asyncio.get_running_loop().time() < deadline:
        holders = [
            i
            for i, node in enumerate(cluster.nodes)
            if node is not victim and victim.node_id in node.active_view()
        ]
        if not holders:
            break
        await asyncio.sleep(0.1)
    print("  connection resets detected; views repaired from passive views")

    message_id = cluster.nodes[0].broadcast({"event": "after-crash", "seq": 2})
    count = await cluster.wait_for_delivery(message_id, expected=SIZE - 1, timeout=10.0)
    print(f"  post-crash broadcast delivered to {count}/{SIZE - 1} survivors")

    print("\nactive views after repair:")
    for i, node in enumerate(cluster.nodes):
        if node is victim:
            continue
        peers = ", ".join(names.get(p, str(p)) for p in node.active_view())
        print(f"  node{i}: [{peers}]")

    await cluster.stop()
    print("\ndone.")


if __name__ == "__main__":
    asyncio.run(main())
