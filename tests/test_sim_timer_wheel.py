"""Edge cases of the engine's hierarchical timer wheel.

The generic ordering contract (posts + timers fire in global
``(time, insertion)`` order, byte-identical to the old mixed-tuple heap)
lives in ``test_sim_engine.py``; this module drills into the wheel's own
mechanics: cascades between levels, cancellation *after* an entry has
cascaded, the far-future overflow handoff, and pickling an engine whose
wheel is mid-advance (cursor staged, cascades partially done).
"""

from __future__ import annotations

import heapq
import pickle
from itertools import count

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (
    WHEEL_BITS,
    WHEEL_LEVELS,
    WHEEL_RESOLUTION,
    Engine,
)

#: One level-0 lap in seconds (256 ticks).
LAP0 = (1 << WHEEL_BITS) * WHEEL_RESOLUTION

#: A delay guaranteed past the whole wheel (2^32 ticks) — overflow heap.
BEYOND_WHEEL = (1 << (WHEEL_BITS * WHEEL_LEVELS)) * WHEEL_RESOLUTION * 1.5


class Recorder:
    """Picklable callback that records its label (lambdas are not)."""

    def __init__(self) -> None:
        self.fired: list = []

    def __call__(self, label) -> None:
        self.fired.append(label)


def _reference_order(operations) -> list[int]:
    """(delay, cancel_at_index) ops on a (time, seq) heap — the exact
    pre-wheel semantics: ``cancel_at_index`` marks which *later* op's
    position cancels this timer (or None)."""
    queue: list = []
    seq = count()
    fired = []
    cancelled = set()
    for index, (delay, cancel_after) in enumerate(operations):
        heapq.heappush(queue, (delay, next(seq), index))
        if cancel_after is not None:
            cancelled.add(index)
    while queue:
        _, _, index = heapq.heappop(queue)
        if index not in cancelled:
            fired.append(index)
    return fired


class TestCancelAfterCascade:
    def test_cancel_after_entry_cascaded_to_level_zero(self):
        """A timer inserted at a high level, cascaded down by the wheel
        advance, then cancelled, must not fire — and the books balance."""
        engine = Engine()
        recorder = Recorder()
        # Far enough for level >= 1, with near traffic forcing advances.
        far = engine.schedule(3 * LAP0, recorder, "far")
        for hop in range(10):
            engine.schedule(0.9 * LAP0 + hop * 0.01, recorder, hop)
        # Advance past one lap boundary: the far timer's lap is nearer now.
        engine.run_until(2 * LAP0)
        assert recorder.fired == list(range(10))
        far.cancel()
        engine.run_until_idle()
        assert recorder.fired == list(range(10))
        assert engine.live_pending == 0
        engine.compact()
        assert engine.pending == 0

    def test_cancel_inside_staged_cursor_batch(self):
        """Timers sharing one wheel tick are staged together; an earlier
        one cancelling a later one mid-batch must suppress it."""
        engine = Engine()
        recorder = Recorder()
        doomed = []

        def killer() -> None:
            recorder.fired.append("killer")
            for handle in doomed:
                handle.cancel()

        base = 0.5 * WHEEL_RESOLUTION  # all inside one tick
        engine.schedule(base, killer)
        doomed.extend(
            engine.schedule(base + 1e-7 * i, recorder, f"doomed-{i}") for i in range(5)
        )
        survivor_time = base + 1e-3
        engine.schedule(survivor_time + 0.0, recorder, "tail")
        engine.run_until_idle()
        assert recorder.fired == ["killer", "tail"]
        assert engine.live_pending == 0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                # Delays spanning level 0, level 1+, and lap boundaries.
                st.sampled_from(
                    [0.0, 0.01, 0.3, LAP0, 1.7 * LAP0, 5 * LAP0, 300.0]
                ),
                # None = keep; an int selects "cancel after that many
                # firings" (so cancels happen mid-run, after cascades).
                st.one_of(st.none(), st.integers(min_value=0, max_value=6)),
            ),
            max_size=40,
        )
    )
    def test_mid_run_cancels_match_reference_heap(self, operations):
        """Timers cancelled *while the wheel is advancing* (not at
        schedule time) still leave exactly the reference firing order."""
        engine = Engine()
        fired: list[int] = []
        handles: dict[int, object] = {}
        pending_cancels: dict[int, list[int]] = {}

        def fire(index: int) -> None:
            fired.append(index)
            for victim in pending_cancels.get(len(fired), ()):
                handle = handles.get(victim)
                if handle is not None:
                    handle.cancel()

        for index, (delay, cancel_after) in enumerate(operations):
            handles[index] = engine.schedule(delay, fire, index)
            if cancel_after is not None:
                pending_cancels.setdefault(cancel_after, []).append(index)
        # Cancels registered for "after 0 firings" happen immediately.
        for victim in pending_cancels.get(0, ()):
            handles[victim].cancel()
        engine.run_until_idle()

        # Reference: replay on a (time, seq) heap with the same cancel
        # schedule driven by the same firing sequence.
        queue: list = []
        seq = count()
        ref_fired: list[int] = []
        cancelled: set[int] = set()
        ref_cancels = {
            k: list(v) for k, v in pending_cancels.items()
        }
        for index, (delay, _cancel) in enumerate(operations):
            heapq.heappush(queue, (delay, next(seq), index))
        for victim in ref_cancels.get(0, ()):
            cancelled.add(victim)
        while queue:
            _, _, index = heapq.heappop(queue)
            if index in cancelled:
                continue
            ref_fired.append(index)
            for victim in ref_cancels.get(len(ref_fired), ()):
                cancelled.add(victim)
        assert fired == ref_fired
        assert engine.live_pending == 0


class TestCursorBoundedness:
    def test_far_timer_does_not_pin_consumed_cursor_entries(self):
        """Regression: a lone far-future timer advances the wheel
        position to its tick, so every nearer timer bisects into the
        staged cursor batch.  The consumed prefix must be trimmed as the
        batch drains — not retained until the far timer finally fires."""
        engine = Engine()
        recorder = Recorder()
        engine.schedule(3600.0, recorder, "far")  # pins one cursor batch

        def hop(i: int) -> None:
            recorder.fired.append(i)
            engine.schedule(30.0, recorder, ("decoy", i)).cancel()
            if i < 20_000:
                engine.schedule(0.01, hop, i + 1)

        engine.schedule(0.01, hop, 0)
        engine.run_until(300.0)
        # ~40k timers flowed through the pinned batch; the cursor must
        # hold only a bounded tail, not every consumed entry.
        assert len(engine._wheel_cursor) < 5_000
        assert engine.live_pending == 1  # just the far timer
        engine.run_until_idle()
        assert recorder.fired[-1] == "far"


class TestOverflowHandoff:
    def test_beyond_wheel_timers_land_in_overflow_and_fire_in_order(self):
        engine = Engine()
        recorder = Recorder()
        engine.schedule(BEYOND_WHEEL + 2.0, recorder, "later")
        engine.schedule(BEYOND_WHEEL + 1.0, recorder, "sooner")
        engine.schedule(0.5, recorder, "near")
        assert engine._wheel_overflow  # really took the overflow path
        engine.run_until_idle()
        assert recorder.fired == ["near", "sooner", "later"]
        assert engine.now == BEYOND_WHEEL + 2.0

    def test_overflow_interleaves_with_posts_and_reanchors_the_wheel(self):
        """Draining an overflow batch re-anchors the wheel position far
        in the future; timers scheduled from there must still work."""
        engine = Engine()
        recorder = Recorder()

        def from_the_future() -> None:
            recorder.fired.append("handoff")
            engine.schedule(0.25, recorder, "post-handoff")

        engine.schedule(BEYOND_WHEEL, from_the_future)
        engine.post(1.0, recorder, "near-post")
        engine.run_until_idle()
        assert recorder.fired == ["near-post", "handoff", "post-handoff"]

    def test_cancelled_overflow_entries_are_reclaimed(self):
        engine = Engine()
        handles = [
            engine.schedule(BEYOND_WHEEL + i, lambda: None) for i in range(100)
        ]
        keeper = engine.schedule(1.0, lambda: None)
        for handle in handles:
            handle.cancel()
        engine.compact()
        assert engine.pending == 1
        engine.run_until_idle()
        assert engine.now == keeper.time

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from([0.1, 10.0, LAP0 * 3, BEYOND_WHEEL, BEYOND_WHEEL * 2]),
            max_size=25,
        )
    )
    def test_overflow_and_levels_merge_sorted(self, delays):
        engine = Engine()
        fired: list[float] = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run_until_idle()
        assert fired == sorted(delays)


#: Shared sink for the mid-cascade pickling test: module-level functions
#: pickle by reference, so a thawed engine's callbacks append to the
#: *same* list as the original's — the combined order is observable.
_GLOBAL_FIRED: list = []


def _record_global(label) -> None:
    _GLOBAL_FIRED.append(label)


class TestFreezeThawMidCascade:
    def test_pickle_with_wheel_mid_advance_continues_identically(self):
        """Pickling an engine whose wheel has advanced (entries staged in
        the cursor, cascades partially applied, far timers parked in the
        overflow) and resuming must fire exactly what an uninterrupted
        engine fires."""

        def build() -> Engine:
            engine = Engine()
            for i in range(8):
                engine.schedule(0.4 * LAP0 + i * WHEEL_RESOLUTION / 3, _record_global, i)
            for i in range(4):
                engine.schedule(2.5 * LAP0 + i * 0.01, _record_global, 100 + i)
            engine.schedule(BEYOND_WHEEL, _record_global, "overflow")
            return engine

        _GLOBAL_FIRED.clear()
        reference = build()
        reference.run_until_idle()
        expected = list(_GLOBAL_FIRED)
        assert expected[-1] == "overflow"

        _GLOBAL_FIRED.clear()
        engine = build()
        # Stop mid-stream: the wheel has cascaded and staged batches.
        engine.run_until(0.4 * LAP0 + WHEEL_RESOLUTION)
        assert 0 < len(_GLOBAL_FIRED) < len(expected)
        thawed = pickle.loads(pickle.dumps(engine))
        thawed.run_until_idle()
        assert _GLOBAL_FIRED == expected
        assert thawed.live_pending == 0
        assert thawed.now == reference.now

    def test_pickle_round_trip_is_canonical_fixed_point(self):
        """The wheel pickles as sorted canonical entries: freezing the
        same logical state twice yields identical bytes regardless of how
        far the wheel advanced or what was cancelled in between."""
        engine = Engine()
        engine.schedule(0.3, print, "a")
        engine.schedule(4 * LAP0, print, "b")
        engine.schedule(BEYOND_WHEEL, print, "c")
        engine.schedule(0.2, print, "doomed").cancel()
        frozen = pickle.dumps(engine)
        thawed = pickle.loads(frozen)
        assert pickle.dumps(thawed) == frozen
        # Cancelled wheel entries are dropped from the pickle entirely.
        assert thawed.pending == 3
        assert thawed.live_pending == 3

    def test_thawed_engine_preserves_same_tick_insertion_order(self):
        # Three timers sharing one wheel tick (two at the same instant):
        # the (time, seq) order must survive canonical re-placement.
        _GLOBAL_FIRED.clear()
        engine = Engine()
        engine.schedule(0.5, _record_global, "first")
        engine.schedule(0.5 + WHEEL_RESOLUTION / 10, _record_global, "second")
        engine.schedule(0.5, _record_global, "third")  # same instant as first
        thawed = pickle.loads(pickle.dumps(engine))
        thawed.run_until_idle()
        assert _GLOBAL_FIRED == ["first", "third", "second"]
        # And the original, run independently, fires the same order.
        _GLOBAL_FIRED.clear()
        engine.run_until_idle()
        assert _GLOBAL_FIRED == ["first", "third", "second"]
