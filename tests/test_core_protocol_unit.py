"""Unit tests for the HyParView state machine (Algorithm 1 + Sections
4.2-4.5), driven through small wired simulated networks."""

import pytest

from repro.common.errors import ProtocolError
from repro.core.config import HyParViewConfig
from repro.core.messages import Disconnect, ForwardJoin, Neighbor, NeighborReply, Shuffle

SMALL = HyParViewConfig(active_view_capacity=3, passive_view_capacity=5, arwl=3, prwl=2)


class TestJoin:
    def test_join_creates_symmetric_link(self, world):
        (_, a), (_, b) = world.hyparview_many(2)
        b.join(a.address)
        world.drain()
        assert b.address in a.active
        assert a.address in b.active

    def test_join_through_self_rejected(self, world):
        _, a = world.hyparview()
        with pytest.raises(ProtocolError):
            a.join(a.address)

    def test_contact_forwards_join_to_its_active_view(self, world):
        nodes = world.hyparview_many(4)
        protocols = [p for _, p in nodes]
        world.join_chain(protocols[:3])
        # Count FORWARDJOIN traffic for the 4th join.
        before = world.network.stats.messages_by_type.get("ForwardJoin", 0)
        protocols[3].join(protocols[0].address)
        world.drain()
        after = world.network.stats.messages_by_type.get("ForwardJoin", 0)
        assert after > before

    def test_join_to_dead_contact_cleans_active_view(self, world):
        (node_a, a), (_, b) = world.hyparview_many(2)
        world.network.fail(node_a.node_id)
        b.join(a.address)
        world.drain()
        assert a.address not in b.active
        assert len(b.active) == 0

    def test_contact_with_full_active_view_evicts_with_disconnect(self, world):
        nodes = world.hyparview_many(6, config=SMALL)
        protocols = [p for _, p in nodes]
        world.join_chain(protocols)
        contact = protocols[0]
        assert len(contact.active) <= SMALL.active_view_capacity
        # Every node the contact evicted got a DISCONNECT and mirrored it.
        for _, proto in nodes[1:]:
            if contact.address not in proto.active:
                assert proto.address not in contact.active  # symmetric removal


class TestForwardJoin:
    def test_ttl_zero_accepts_into_active_view(self, world):
        (_, a), (_, b), (_, c) = world.hyparview_many(3, config=SMALL)
        world.join_chain([a, b])
        # Deliver a ForwardJoin with ttl=0 at b for new node c.
        b.handle_forward_join(ForwardJoin(c.address, 0, a.address))
        world.drain()
        assert c.address in b.active
        assert b.address in c.active  # reply created the reverse edge

    def test_single_member_active_view_accepts_regardless_of_ttl(self, world):
        (_, a), (_, b), (_, c) = world.hyparview_many(3, config=SMALL)
        world.join_chain([a, b])  # b's active view == {a}
        b.handle_forward_join(ForwardJoin(c.address, 3, a.address))
        world.drain()
        assert c.address in b.active

    def test_prwl_inserts_into_passive_view(self, world):
        config = HyParViewConfig(active_view_capacity=3, passive_view_capacity=5, arwl=4, prwl=2)
        (_, a), (_, b), (_, c), (_, d) = world.hyparview_many(4, config=config)
        world.join_chain([a, b, c])
        # At ttl == prwl, the walker inserts the joiner into its passive view
        # and forwards; b has 2 active members so the walk continues.
        b.handle_forward_join(ForwardJoin(d.address, config.prwl, a.address))
        world.drain()
        assert d.address in b.passive

    def test_walk_forwards_with_decremented_ttl(self, world):
        config = HyParViewConfig(active_view_capacity=4, passive_view_capacity=5, arwl=5, prwl=1)
        (na, a), (nb, b), (nc, c), (_, d) = world.hyparview_many(4, config=config)
        world.join_chain([a, b, c])
        world.network.trace = __import__("repro.sim.trace", fromlist=["EventTrace"]).EventTrace()
        b.handle_forward_join(ForwardJoin(d.address, 5, a.address))
        world.drain()
        forwards = world.network.trace.messages_of_type("ForwardJoin")
        sends = [record for record in forwards if record.kind == "send"]
        assert sends  # the walk continued rather than being absorbed at b

    def test_walk_reaching_joiner_is_dropped(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        world.join_chain([a, b])
        before = len(a.active)
        a.handle_forward_join(ForwardJoin(a.address, 0, b.address))
        world.drain()
        assert len(a.active) == before  # no self-insertion

    def test_forward_join_reply_adds_reverse_edge(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        from repro.core.messages import ForwardJoinReply

        a.handle_forward_join_reply(ForwardJoinReply(b.address))
        assert b.address in a.active


class TestNeighbor:
    def test_high_priority_always_accepted(self, world):
        nodes = world.hyparview_many(6, config=SMALL)
        protocols = [p for _, p in nodes]
        world.join_chain(protocols[:5])
        target = protocols[0]
        # Fill target's active view, then fire a high-priority request.
        requester = protocols[5]
        target.handle_neighbor(Neighbor(requester.address, True))
        world.drain()
        assert requester.address in target.active

    def test_low_priority_rejected_when_full(self, world):
        config = HyParViewConfig(active_view_capacity=2, passive_view_capacity=5)
        (_, a), (_, b), (_, c), (_, d) = world.hyparview_many(4, config=config)
        world.join_chain([a, b, c])
        full = [p for p in (a, b, c) if p.active.is_full]
        assert full, "expected at least one full active view"
        target = full[0]
        target.handle_neighbor(Neighbor(d.address, False))
        world.drain()
        assert d.address not in target.active
        assert target.stats.neighbor_rejects >= 1

    def test_low_priority_accepted_with_free_slot(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        a.handle_neighbor(Neighbor(b.address, False))
        world.drain()
        assert b.address in a.active
        assert a.stats.neighbor_accepts == 1

    def test_request_from_existing_neighbor_reacknowledged(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        world.join_chain([a, b])
        a.handle_neighbor(Neighbor(b.address, False))
        world.drain()
        assert b.address in a.active
        assert len([p for p in a.active if p == b.address]) == 1

    def test_stale_reply_ignored(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        # No promotion pending: a stray reply must not corrupt state.
        a.handle_neighbor_reply(NeighborReply(b.address, True))
        assert b.address not in a.active


class TestDisconnect:
    def test_disconnect_moves_peer_to_passive(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        world.join_chain([a, b])
        a.handle_disconnect(Disconnect(b.address))
        assert b.address not in a.active
        assert b.address in a.passive

    def test_disconnect_from_non_neighbor_ignored(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        a.handle_disconnect(Disconnect(b.address))
        assert b.address not in a.passive

    def test_leave_notifies_all_neighbors(self, world):
        protocols = [p for _, p in world.hyparview_many(3, config=SMALL)]
        world.join_chain(protocols)
        leaver = protocols[1]
        neighbors = [p for p in protocols if leaver.address in p.active]
        leaver.leave()
        world.drain()
        assert len(leaver.active) == 0
        for peer in neighbors:
            assert leaver.address not in peer.active
            assert leaver.address in peer.passive


class TestFailureHandling:
    def test_send_failure_promotes_passive_candidate(self, world):
        config = HyParViewConfig(active_view_capacity=2, passive_view_capacity=5)
        (na, a), (nb, b), (_, c) = world.hyparview_many(3, config=config)
        world.join_chain([a, b])
        a._add_to_passive(c.address)
        world.network.fail(nb.node_id)
        a.report_failure(b.address)
        world.drain()
        assert b.address not in a.active
        assert c.address in a.active
        assert a.address in c.active  # symmetric after promotion

    def test_link_down_notification_triggers_repair(self, world):
        config = HyParViewConfig(active_view_capacity=2, passive_view_capacity=5)
        (_, a), (nb, b), (_, c) = world.hyparview_many(3, config=config)
        world.join_chain([a, b])
        a._add_to_passive(c.address)
        world.network.fail(nb.node_id)  # no send needed: watch fires
        world.drain()
        assert b.address not in a.active
        assert c.address in a.active
        assert a.stats.failures_detected == 1

    def test_dead_passive_candidates_expunged_during_promotion(self, world):
        config = HyParViewConfig(active_view_capacity=2, passive_view_capacity=5)
        (_, a), (nb, b), (nc, c), (_, d) = world.hyparview_many(4, config=config)
        world.join_chain([a, b])
        a._add_to_passive(c.address)
        a._add_to_passive(d.address)
        world.network.fail(nc.node_id)
        world.network.fail(nb.node_id)
        world.drain()
        assert c.address not in a.passive  # dead candidate removed
        assert d.address in a.active  # live candidate promoted

    def test_failed_peer_not_recycled_into_passive(self, world):
        (_, a), (nb, b) = world.hyparview_many(2, config=SMALL)
        world.join_chain([a, b])
        world.network.fail(nb.node_id)
        world.drain()
        assert b.address not in a.passive

    def test_empty_active_view_promotes_with_high_priority(self, world):
        config = HyParViewConfig(active_view_capacity=2, passive_view_capacity=5)
        (na, a), (nb, b), (_, c), (_, d) = world.hyparview_many(4, config=config)
        world.join_chain([c, d])  # fill c and d with each other
        world.join_chain([a, b])
        a._add_to_passive(c.address)
        world.network.fail(nb.node_id)
        world.drain()
        # a's view was empty after losing b => high priority => accepted
        # even though c might have been full.
        assert c.address in a.active

    def test_failure_report_for_unknown_peer_cleans_passive(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        a._add_to_passive(b.address)
        a.report_failure(b.address)
        assert b.address not in a.passive


class TestShuffle:
    def test_shuffle_carries_self_and_samples(self, world):
        config = HyParViewConfig(
            active_view_capacity=3, passive_view_capacity=6, shuffle_ka=2, shuffle_kp=2
        )
        protocols = [p for _, p in world.hyparview_many(4, config=config)]
        world.join_chain(protocols)
        initiator = protocols[0]
        world.network.trace = __import__("repro.sim.trace", fromlist=["EventTrace"]).EventTrace()
        initiator.shuffle_once()
        world.drain()
        assert initiator.stats.shuffles_initiated == 1
        assert initiator._last_shuffle_exchange[0] == initiator.address
        assert 1 <= len(initiator._last_shuffle_exchange) <= 1 + 2 + 2

    def test_shuffle_walk_forwards_until_ttl(self, world):
        config = HyParViewConfig(active_view_capacity=3, passive_view_capacity=6, shuffle_ttl=3)
        protocols = [p for _, p in world.hyparview_many(5, config=config)]
        world.join_chain(protocols)
        initiator = protocols[0]
        initiator.shuffle_once()
        world.drain()
        accepted = sum(p.stats.shuffles_accepted for p in protocols)
        assert accepted == 1  # exactly one node accepted the walk

    def test_shuffle_reply_integrates_into_passive(self, world):
        protocols = [p for _, p in world.hyparview_many(6)]
        world.join_chain(protocols)
        initiator = protocols[0]
        for _ in range(3):
            initiator.shuffle_once()
            world.drain()
        assert initiator.stats.shuffle_replies_received >= 1

    def test_shuffle_with_empty_active_view_is_noop(self, world):
        _, a = world.hyparview(config=SMALL)
        a.shuffle_once()
        world.drain()
        assert a.stats.shuffles_initiated == 0

    def test_integration_excludes_self_active_and_known(self, world):
        (_, a), (_, b), (_, c) = world.hyparview_many(3, config=SMALL)
        world.join_chain([a, b])
        a._add_to_passive(c.address)
        a._integrate_exchange((a.address, b.address, c.address), sent=())
        # a itself, active member b and known passive c are all excluded.
        assert a.address not in a.passive
        assert b.address not in a.passive
        assert list(a.passive.members()).count(c.address) == 1

    def test_integration_eviction_prefers_sent_ids(self, world):
        config = HyParViewConfig(active_view_capacity=3, passive_view_capacity=2)
        _, a = world.hyparview(config=config)
        from repro.common.ids import NodeId

        sent_away = NodeId("sent", 1)
        kept = NodeId("kept", 1)
        a._add_to_passive(sent_away)
        a._add_to_passive(kept)
        incoming = (NodeId("new1", 1), )
        a._integrate_exchange(incoming, sent=(sent_away,))
        assert sent_away not in a.passive  # evicted first
        assert kept in a.passive
        assert NodeId("new1", 1) in a.passive

    def test_shuffle_to_dead_peer_detects_failure(self, world):
        (_, a), (nb, b) = world.hyparview_many(2, config=SMALL)
        world.join_chain([a, b])
        world.network.fail(nb.node_id)
        # Suppress the watch notification path by shuffling immediately;
        # either path must remove b.
        a.shuffle_once()
        world.drain()
        assert b.address not in a.active


class TestViewPrimitives:
    def test_active_and_passive_disjoint(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        a._add_to_passive(b.address)
        a._add_to_active(b.address)
        assert b.address in a.active
        assert b.address not in a.passive

    def test_add_to_active_is_idempotent(self, world):
        (_, a), (_, b) = world.hyparview_many(2, config=SMALL)
        assert a._add_to_active(b.address) is True
        assert a._add_to_active(b.address) is False
        assert len(a.active) == 1

    def test_self_never_added(self, world):
        _, a = world.hyparview(config=SMALL)
        assert a._add_to_active(a.address) is False
        assert a._add_to_passive(a.address) is False

    def test_passive_eviction_at_capacity(self, world):
        config = HyParViewConfig(active_view_capacity=3, passive_view_capacity=2)
        _, a = world.hyparview(config=config)
        from repro.common.ids import NodeId

        for i in range(5):
            a._add_to_passive(NodeId(f"p{i}", 1))
        assert len(a.passive) == 2

    def test_gossip_targets_excludes_sender(self, world):
        protocols = [p for _, p in world.hyparview_many(3, config=SMALL)]
        world.join_chain(protocols)
        a = protocols[0]
        sender = a.active.members()[0]
        targets = a.gossip_targets(99, exclude=(sender,))
        assert sender not in targets
        assert set(targets) <= set(a.active.members())

    def test_stats_counters_progress(self, world):
        protocols = [p for _, p in world.hyparview_many(4, config=SMALL)]
        world.join_chain(protocols)
        contact = protocols[0]
        assert contact.stats.joins_received >= 1
        total_forward = sum(p.stats.forward_joins_received for p in protocols)
        assert total_forward > 0
