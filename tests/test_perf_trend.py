"""Tests for the CI perf-trend delta renderer (benchmarks/perf_trend.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "perf_trend", ROOT / "benchmarks" / "perf_trend.py"
)
perf_trend = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("perf_trend", perf_trend)
_spec.loader.exec_module(perf_trend)


def _record(scenario: str, *, seconds=None, events_per_second=None) -> dict:
    return {
        "schema": "repro-timings/1",
        "scenario": scenario,
        "tier": "smoke",
        "workers": 2,
        "units": [],
        "totals": {
            "units": 1,
            "worker_seconds": seconds,
            "events": 100,
            "events_per_second": events_per_second,
        },
    }


def _write(directory: pathlib.Path, record: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"TIMINGS_{record['scenario']}.json"
    path.write_text(json.dumps(record))


class TestCompare:
    def test_regression_beyond_threshold_warns(self):
        current = {"fig2": _record("fig2", seconds=2.0)}
        previous = {"fig2": _record("fig2", seconds=1.0)}
        lines, warnings = perf_trend.compare(current, previous, threshold=0.30)
        assert len(warnings) == 1
        assert "fig2" in warnings[0]
        assert any("regression" in line for line in lines)

    def test_small_delta_is_ok(self):
        current = {"fig2": _record("fig2", seconds=1.1)}
        previous = {"fig2": _record("fig2", seconds=1.0)}
        lines, warnings = perf_trend.compare(current, previous, threshold=0.30)
        assert warnings == []
        assert any("| fig2 |" in line and "| ok |" in line for line in lines)

    def test_improvement_is_flagged_not_warned(self):
        current = {"fig2": _record("fig2", seconds=0.5)}
        previous = {"fig2": _record("fig2", seconds=1.0)}
        lines, warnings = perf_trend.compare(current, previous, threshold=0.30)
        assert warnings == []
        assert any("improvement" in line for line in lines)

    def test_events_per_second_trends_inverted(self):
        """For kernel microbenchmarks, *lower* events/s is the regression."""
        current = {"kernel": _record("kernel", events_per_second=1_000_000)}
        previous = {"kernel": _record("kernel", events_per_second=2_000_000)}
        _, warnings = perf_trend.compare(current, previous, threshold=0.30)
        assert len(warnings) == 1
        current = {"kernel": _record("kernel", events_per_second=3_000_000)}
        _, warnings = perf_trend.compare(current, previous, threshold=0.30)
        assert warnings == []

    def test_new_and_retired_scenarios_listed(self):
        current = {"fresh": _record("fresh", seconds=1.0)}
        previous = {"gone": _record("gone", seconds=1.0)}
        lines, warnings = perf_trend.compare(current, previous, threshold=0.30)
        assert warnings == []
        assert any("| fresh |" in line and "new" in line for line in lines)
        assert any("| gone |" in line and "retired" in line for line in lines)

    def test_no_previous_renders_current_only(self):
        current = {"fig2": _record("fig2", seconds=1.0)}
        lines, warnings = perf_trend.compare(current, {}, threshold=0.30)
        assert warnings == []
        assert any("| fig2 |" in line for line in lines)


class TestMedianWindow:
    """The baseline is the median of the last k runs, not the single
    previous run — one noisy hosted-runner sample must not flip status."""

    def test_single_outlier_in_history_does_not_mask_regression(self):
        # Median of (1.0, 1.0, 9.0) is 1.0: the slow outlier run does not
        # drag the baseline up, so a genuinely slow current run still warns.
        history = [
            {"fig2": _record("fig2", seconds=1.0)},
            {"fig2": _record("fig2", seconds=9.0)},
            {"fig2": _record("fig2", seconds=1.0)},
        ]
        current = {"fig2": _record("fig2", seconds=2.0)}
        _, warnings = perf_trend.compare(current, history, threshold=0.30)
        assert len(warnings) == 1

    def test_single_fast_outlier_does_not_fake_regression(self):
        # Against the single previous run (0.4s) this would warn; against
        # the median (1.0s) it is steady state.
        history = [
            {"fig2": _record("fig2", seconds=0.4)},
            {"fig2": _record("fig2", seconds=1.0)},
            {"fig2": _record("fig2", seconds=1.0)},
        ]
        current = {"fig2": _record("fig2", seconds=1.1)}
        lines, warnings = perf_trend.compare(current, history, threshold=0.30)
        assert warnings == []
        assert any("| fig2 |" in line and "| ok |" in line for line in lines)

    def test_window_size_rendered_in_header(self):
        history = [
            {"fig2": _record("fig2", seconds=1.0)},
            {"fig2": _record("fig2", seconds=1.0)},
        ]
        current = {"fig2": _record("fig2", seconds=1.0)}
        lines, _ = perf_trend.compare(current, history, threshold=0.30)
        assert any("median of last 2 runs" in line for line in lines)

    def test_scenario_missing_from_some_history_runs(self):
        # The median only aggregates runs that actually measured the
        # scenario; a sparse history still yields a baseline.
        history = [
            {"fig2": _record("fig2", seconds=1.0)},
            {"other": _record("other", seconds=3.0)},
            {"fig2": _record("fig2", seconds=2.0)},
        ]
        current = {"fig2": _record("fig2", seconds=1.5)}
        _, warnings = perf_trend.compare(current, history, threshold=0.30)
        assert warnings == []  # median(1.0, 2.0) = 1.5

    def test_metric_kind_change_restarts_baseline(self):
        history = [
            {"kernel": _record("kernel", seconds=2.0)},
            {"kernel": _record("kernel", seconds=2.0)},
        ]
        current = {"kernel": _record("kernel", events_per_second=1_000_000)}
        lines, warnings = perf_trend.compare(current, history, threshold=0.30)
        assert warnings == []
        assert any("| kernel |" in line and "metric changed" in line for line in lines)

    def test_main_accepts_repeated_previous_dirs(self, tmp_path, capsys):
        current = tmp_path / "cur"
        _write(current, _record("fig2", seconds=1.0))
        dirs = []
        for index, seconds in enumerate((0.9, 1.0, 1.1)):
            directory = tmp_path / f"prev{index}"
            _write(directory, _record("fig2", seconds=seconds))
            dirs.append(directory)
        argv = ["--current", str(current)]
        for directory in dirs:
            argv += ["--previous", str(directory)]
        assert perf_trend.main(argv) == 0
        out = capsys.readouterr().out
        assert "median of last 3 runs" in out
        assert "::warning" not in out


class TestLoadTimingsDir:
    def test_loads_only_timings_schema(self, tmp_path):
        _write(tmp_path, _record("fig2", seconds=1.0))
        (tmp_path / "TIMINGS_broken.json").write_text("{not json")
        (tmp_path / "TIMINGS_other.json").write_text(json.dumps({"schema": "x"}))
        (tmp_path / "BENCH_fig2.json").write_text(json.dumps({"schema": "repro-bench/1"}))
        records = perf_trend.load_timings_dir(tmp_path)
        assert sorted(records) == ["fig2"]

    def test_main_soft_fails_and_writes_summary(self, tmp_path, capsys):
        current = tmp_path / "cur"
        previous = tmp_path / "prev"
        _write(current, _record("fig2", seconds=5.0))
        _write(previous, _record("fig2", seconds=1.0))
        summary = tmp_path / "summary.md"
        code = perf_trend.main(
            [
                "--current", str(current),
                "--previous", str(previous),
                "--summary", str(summary),
            ]
        )
        assert code == 0  # regressions warn, never fail
        out = capsys.readouterr().out
        assert "::warning" in out
        assert "Perf trend" in summary.read_text()

    def test_main_requires_current_timings(self, tmp_path):
        assert perf_trend.main(["--current", str(tmp_path / "empty")]) == 1


class TestCommittedHistory:
    """The perf_history.jsonl spine: record lines, reload as the median
    window, survive junk, and outrank --previous artifact directories."""

    def _history(self, tmp_path, runs):
        path = tmp_path / "perf_history.jsonl"
        for current in runs:
            perf_trend.append_history(path, perf_trend.history_record(current))
        return path

    def test_record_and_reload_round_trip(self, tmp_path):
        current = {
            "fig2": _record("fig2", seconds=2.5),
            "kernel": _record("kernel", events_per_second=1_500_000.0),
        }
        path = self._history(tmp_path, [current])
        runs = perf_trend.load_history(path)
        assert len(runs) == 1
        assert perf_trend._metric(runs[0]["fig2"]) == (2.5, "seconds")
        assert perf_trend._metric(runs[0]["kernel"]) == (1_500_000.0, "events/s")

    def test_record_carries_sha_and_run_id(self, tmp_path):
        path = tmp_path / "perf_history.jsonl"
        record = perf_trend.history_record(
            {"fig2": _record("fig2", seconds=1.0)}, sha="abc123", run_id=42
        )
        perf_trend.append_history(path, record)
        line = json.loads(path.read_text())
        assert line["schema"] == perf_trend.HISTORY_SCHEMA
        assert line["sha"] == "abc123"
        assert line["run_id"] == "42"

    def test_window_keeps_only_trailing_entries(self, tmp_path):
        runs = [{"fig2": _record("fig2", seconds=float(i))} for i in range(1, 9)]
        path = self._history(tmp_path, runs)
        window = perf_trend.load_history(path, window=3)
        assert [perf_trend._metric(run["fig2"])[0] for run in window] == [6.0, 7.0, 8.0]

    def test_junk_lines_are_skipped(self, tmp_path, capsys):
        path = self._history(tmp_path, [{"fig2": _record("fig2", seconds=1.0)}])
        with path.open("a") as handle:
            handle.write("{truncated\n")
            handle.write(json.dumps({"schema": "something-else"}) + "\n")
            handle.write("\n")
        runs = perf_trend.load_history(path)
        assert len(runs) == 1
        err = capsys.readouterr().err
        assert "skipping" in err

    def test_missing_file_yields_empty_window(self, tmp_path):
        assert perf_trend.load_history(tmp_path / "absent.jsonl") == []

    def test_main_prefers_history_over_previous_dirs(self, tmp_path, capsys):
        current_dir = tmp_path / "cur"
        _write(current_dir, _record("fig2", seconds=2.0))
        # The artifact dir says 2.0s (no regression); the committed
        # history says 1.0s (regression) — history must win.
        previous = tmp_path / "prev"
        _write(previous, _record("fig2", seconds=2.0))
        history = self._history(
            tmp_path,
            [{"fig2": _record("fig2", seconds=1.0)} for _ in range(3)],
        )
        assert perf_trend.main(
            [
                "--current", str(current_dir),
                "--previous", str(previous),
                "--history", str(history),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "::warning" in out
        assert "median of last 3 runs" in out

    def test_main_falls_back_to_previous_when_history_empty(self, tmp_path, capsys):
        current_dir = tmp_path / "cur"
        _write(current_dir, _record("fig2", seconds=1.0))
        previous = tmp_path / "prev"
        _write(previous, _record("fig2", seconds=1.0))
        empty = tmp_path / "perf_history.jsonl"
        empty.write_text("")
        assert perf_trend.main(
            [
                "--current", str(current_dir),
                "--previous", str(previous),
                "--history", str(empty),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "median of last 1 run" in out

    def test_sparkline_normalizes_to_the_glyph_ramp(self):
        spark = perf_trend._spark([1.0, 2.0, 3.0])
        assert len(spark) == 3
        assert spark[0] == perf_trend.SPARK_CHARS[0]
        assert spark[-1] == perf_trend.SPARK_CHARS[-1]
        # A flat series renders flat, not divide-by-zero.
        assert perf_trend._spark([2.0, 2.0]) == perf_trend.SPARK_CHARS[0] * 2

    def test_sparkline_section_renders_history_plus_current(self):
        history = [
            {"fig2": _record("fig2", seconds=float(i))} for i in range(1, 4)
        ]
        current = {"fig2": _record("fig2", seconds=4.0)}
        lines = perf_trend.sparkline_section(history, current)
        assert any("| fig2 |" in line for line in lines)
        row = next(line for line in lines if "| fig2 |" in line)
        assert "4.00s" in row  # current lands at the right edge
        assert "1.00s" in row and "4.00s" in row  # range column

    def test_sparkline_section_skips_single_samples_and_kind_changes(self):
        history = [{"kernel": _record("kernel", seconds=2.0)}]
        current = {
            "kernel": _record("kernel", events_per_second=1_000_000),
            "lonely": _record("lonely", seconds=1.0),
        }
        # kernel's lone events/s sample and lonely's single run are both
        # one-dot non-trends: nothing renders, the section collapses.
        assert perf_trend.sparkline_section(history, current) == []

    def test_sparkline_limit_keeps_newest_entries(self):
        history = [
            {"fig2": _record("fig2", seconds=float(i))} for i in range(1, 11)
        ]
        current = {"fig2": _record("fig2", seconds=11.0)}
        lines = perf_trend.sparkline_section(history, current, limit=4)
        row = next(line for line in lines if "| fig2 |" in line)
        spark = row.split("`")[1]
        assert len(spark) == 5  # 4 history entries + current
        assert "7.00s" in row  # the oldest surviving entry

    def test_main_sparklines_flag_renders_section(self, tmp_path, capsys):
        current_dir = tmp_path / "cur"
        _write(current_dir, _record("fig2", seconds=1.0))
        history = self._history(
            tmp_path,
            [{"fig2": _record("fig2", seconds=float(i))} for i in (1, 2)],
        )
        assert perf_trend.main(
            [
                "--current", str(current_dir),
                "--history", str(history),
                "--sparklines",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Per-scenario history" in out
        assert any(ch in out for ch in perf_trend.SPARK_CHARS)

    def test_main_record_history_appends(self, tmp_path):
        current_dir = tmp_path / "cur"
        _write(current_dir, _record("fig2", seconds=1.25))
        path = tmp_path / "perf_history.jsonl"
        for _ in range(2):
            assert perf_trend.main(
                [
                    "--current", str(current_dir),
                    "--record-history", str(path),
                    "--sha", "deadbeef",
                ]
            ) == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert all(line["scenarios"]["fig2"]["value"] == 1.25 for line in lines)
