"""Tests for overlay graph analytics, cross-checked against networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.ids import NodeId
from repro.metrics.graph import OverlaySnapshot


def nid(i):
    return NodeId(f"n{i}", 1)


def snapshot_from_edges(n, edges):
    adjacency = {nid(i): [] for i in range(n)}
    for src, dst in edges:
        adjacency[nid(src)].append(nid(dst))
    return adjacency, OverlaySnapshot(adjacency)


def random_digraph(n, p, seed):
    rng = random.Random(seed)
    edges = [(i, j) for i in range(n) for j in range(n) if i != j and rng.random() < p]
    return edges


class TestShape:
    def test_counts(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert snap.node_count == 3
        assert snap.edge_count == 3

    def test_self_loops_dropped(self):
        _, snap = snapshot_from_edges(2, [(0, 0), (0, 1)])
        assert snap.edge_count == 1

    def test_edges_to_unknown_nodes_dropped(self):
        adjacency = {nid(0): [nid(1), nid(99)], nid(1): []}
        snap = OverlaySnapshot(adjacency)
        assert snap.edge_count == 1

    def test_restrict_to_filters_nodes_and_edges(self):
        views = {nid(0): [nid(1), nid(2)], nid(1): [nid(0)], nid(2): [nid(0)]}
        snap = OverlaySnapshot.from_out_neighbors(views, restrict_to={nid(0), nid(1)})
        assert snap.node_count == 2
        assert snap.edge_count == 2  # 0->1 and 1->0 survive

    def test_out_neighbors_accessor(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (0, 2)])
        assert set(snap.out_neighbors(nid(0))) == {nid(1), nid(2)}


class TestDegrees:
    def test_degree_maps(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert snap.out_degrees() == {nid(0): 2, nid(1): 1, nid(2): 0}
        assert snap.in_degrees() == {nid(0): 0, nid(1): 1, nid(2): 2}

    def test_in_degree_histogram(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert snap.in_degree_histogram() == {0: 1, 1: 1, 2: 1}

    @settings(max_examples=25, deadline=None)
    @given(st.integers(3, 15), st.floats(0.05, 0.5), st.integers(0, 10**6))
    def test_degrees_match_networkx(self, n, p, seed):
        edges = random_digraph(n, p, seed)
        _, snap = snapshot_from_edges(n, edges)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        assert {node.host: d for node, d in snap.in_degrees().items()} == {
            f"n{i}": graph.in_degree(i) for i in range(n)
        }
        assert {node.host: d for node, d in snap.out_degrees().items()} == {
            f"n{i}": graph.out_degree(i) for i in range(n)
        }


class TestClustering:
    def test_triangle_has_full_clustering(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert snap.average_clustering() == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        _, snap = snapshot_from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert snap.average_clustering() == 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 14), st.floats(0.1, 0.6), st.integers(0, 10**6))
    def test_clustering_matches_networkx_on_undirected_projection(self, n, p, seed):
        edges = random_digraph(n, p, seed)
        _, snap = snapshot_from_edges(n, edges)
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        expected = nx.average_clustering(graph)
        assert snap.average_clustering() == pytest.approx(expected, abs=1e-9)


class TestPaths:
    def test_chain_paths(self):
        _, snap = snapshot_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        stats = snap.shortest_paths()
        # directed chain: pairs (0,1),(0,2),(0,3),(1,2),(1,3),(2,3)
        assert stats.pairs_measured == 6
        assert stats.maximum == 3
        assert stats.average == pytest.approx((1 + 2 + 3 + 1 + 2 + 1) / 6)
        assert stats.unreachable_pairs == 6  # all the reverse pairs

    def test_sampled_sources(self):
        edges = random_digraph(30, 0.2, seed=5)
        _, snap = snapshot_from_edges(30, edges)
        stats = snap.shortest_paths(sample_sources=5, rng=random.Random(0))
        assert stats.pairs_measured + stats.unreachable_pairs == 5 * 29

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 12), st.floats(0.15, 0.6), st.integers(0, 10**6))
    def test_full_paths_match_networkx(self, n, p, seed):
        edges = random_digraph(n, p, seed)
        _, snap = snapshot_from_edges(n, edges)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        lengths = dict(nx.all_pairs_shortest_path_length(graph))
        expected = [
            lengths[i][j]
            for i in range(n)
            for j in range(n)
            if i != j and j in lengths[i]
        ]
        stats = snap.shortest_paths()
        assert stats.pairs_measured == len(expected)
        if expected:
            assert stats.average == pytest.approx(sum(expected) / len(expected))
            assert stats.maximum == max(expected)

    def test_reachable_fraction(self):
        _, snap = snapshot_from_edges(2, [(0, 1)])
        stats = snap.shortest_paths()
        assert stats.reachable_fraction == 0.5


class TestConnectivity:
    def test_connected_cycle(self):
        _, snap = snapshot_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert snap.is_connected()
        assert snap.largest_component_fraction() == 1.0

    def test_two_components(self):
        _, snap = snapshot_from_edges(4, [(0, 1), (2, 3)])
        components = snap.connected_components()
        assert [len(c) for c in components] == [2, 2]
        assert not snap.is_connected()
        assert snap.largest_component_fraction() == 0.5

    def test_direction_ignored_for_connectivity(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (2, 1)])
        assert snap.is_connected()

    def test_isolated_nodes(self):
        _, snap = snapshot_from_edges(3, [(0, 1)])
        assert snap.isolated_nodes() == (nid(2),)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 15), st.floats(0.0, 0.4), st.integers(0, 10**6))
    def test_components_match_networkx(self, n, p, seed):
        edges = random_digraph(n, p, seed)
        _, snap = snapshot_from_edges(n, edges)
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        expected = sorted((len(c) for c in nx.connected_components(graph)), reverse=True)
        assert [len(c) for c in snap.connected_components()] == expected


class TestQualityMetrics:
    def test_accuracy_counts_live_out_edges(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (0, 2), (1, 2)])
        alive = {nid(0), nid(1)}
        # node0: 1 of 2 out-edges live; node1: 0 of 1; node2 dead (skipped)
        assert snap.accuracy(alive) == pytest.approx((0.5 + 0.0) / 2)

    def test_accuracy_all_alive(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert snap.accuracy({nid(0), nid(1), nid(2)}) == 1.0

    def test_symmetry_fraction(self):
        _, snap = snapshot_from_edges(3, [(0, 1), (1, 0), (1, 2)])
        assert snap.symmetry_fraction() == pytest.approx(2 / 3)

    def test_symmetry_of_empty_graph(self):
        _, snap = snapshot_from_edges(2, [])
        assert snap.symmetry_fraction() == 1.0
