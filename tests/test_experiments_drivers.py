"""Tests for the per-figure experiment drivers and reporting helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import (
    ExperimentParams,
    format_histogram,
    format_percent,
    format_series,
    format_table,
    hyparview_reference_point,
    run_failure_experiment,
    run_failure_sweep,
    run_fanout_sweep,
    run_graph_properties,
    run_healing_experiment,
    run_passive_size_ablation,
    run_resend_ablation,
    run_shuffle_ttl_ablation,
    sparkline,
    stabilized_scenario,
)

PARAMS = ExperimentParams.scaled(80, stabilization_cycles=8)


class TestFailureDriver:
    def test_result_fields(self):
        result = run_failure_experiment("hyparview", PARAMS, 0.3, messages=10)
        assert result.protocol == "hyparview"
        assert result.failure_fraction == 0.3
        assert len(result.series) == 10
        assert 0.0 <= result.average <= 1.0
        assert result.correct_nodes == 56
        assert 0.0 <= result.atomic <= 1.0
        assert result.tail_average(3) == sum(result.series[-3:]) / 3

    def test_base_scenario_not_mutated(self):
        base = stabilized_scenario("hyparview", PARAMS)
        run_failure_experiment("hyparview", PARAMS, 0.5, messages=5, base=base)
        assert len(base.alive_ids()) == 80

    def test_sweep_covers_grid(self):
        results = run_failure_sweep(["hyparview", "cyclon"], [0.2, 0.5], PARAMS, messages=5)
        assert set(results) == {
            ("hyparview", 0.2),
            ("hyparview", 0.5),
            ("cyclon", 0.2),
            ("cyclon", 0.5),
        }

    def test_hyparview_beats_cyclon_after_heavy_failure(self):
        results = run_failure_sweep(["hyparview", "cyclon"], [0.5], PARAMS, messages=15)
        assert (
            results[("hyparview", 0.5)].average > results[("cyclon", 0.5)].average
        )


class TestFanoutDriver:
    def test_sweep_monotone_in_fanout(self):
        points = run_fanout_sweep("cyclon", (1, 4), PARAMS, messages=10)
        assert points[0].average_reliability < points[1].average_reliability

    def test_hyparview_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fanout_sweep("hyparview", (1, 2), PARAMS)

    def test_reference_point_is_atomic(self):
        point = hyparview_reference_point(PARAMS, messages=5)
        assert point.average_reliability == 1.0
        assert point.atomic_fraction == 1.0


class TestHealingDriver:
    def test_hyparview_heals_quickly(self):
        result = run_healing_experiment(
            "hyparview", PARAMS, 0.3, probes_per_cycle=5, max_cycles=10
        )
        assert result.cycles_to_heal is not None
        assert result.cycles_to_heal <= 3
        assert result.baseline_reliability == 1.0

    def test_unhealed_run_reports_none(self):
        result = run_healing_experiment(
            "cyclon", PARAMS, 0.6, probes_per_cycle=3, max_cycles=1
        )
        assert result.max_cycles == 1
        # One cycle is almost never enough for Cyclon at 60% failures.
        assert result.cycles_to_heal is None or result.cycles_to_heal == 1


class TestGraphPropertiesDriver:
    def test_table1_row_fields(self):
        result = run_graph_properties("hyparview", PARAMS, messages=5, path_sample_sources=20)
        assert result.connected
        assert result.symmetry_fraction == 1.0
        assert result.average_clustering < 0.2
        assert result.path_stats.average > 1.0
        assert result.max_hops_to_delivery >= 1.0
        assert sum(result.in_degree_histogram.values()) == 80

    def test_cyclon_row_has_wider_in_degree_spread(self):
        hv = run_graph_properties("hyparview", PARAMS, messages=5, path_sample_sources=20)
        cy = run_graph_properties("cyclon", PARAMS, messages=5, path_sample_sources=20)
        assert cy.in_degree_stats.stddev > hv.in_degree_stats.stddev


class TestAblations:
    def test_passive_size_points(self):
        points = run_passive_size_ablation(
            PARAMS, passive_sizes=(4, 16), failure_fraction=0.5, messages=8
        )
        assert [p.passive_capacity for p in points] == [4, 16]
        for point in points:
            assert 0.0 <= point.average_reliability <= 1.0
            assert 0.0 < point.largest_component_fraction <= 1.0

    def test_shuffle_ttl_points(self):
        points = run_shuffle_ttl_ablation(PARAMS, ttls=(1, 4), failure_fraction=0.4, messages=5)
        assert [p.shuffle_ttl for p in points] == [1, 4]
        for point in points:
            assert point.passive_balance >= 0.0

    def test_resend_ablation_improves_transient(self):
        points = run_resend_ablation(PARAMS, failure_fraction=0.5, messages=10)
        baseline = next(p for p in points if not p.resend_on_repair)
        resend = next(p for p in points if p.resend_on_repair)
        assert resend.data_transmissions >= baseline.data_transmissions
        assert resend.first10_average >= baseline.first10_average - 0.05


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 0.25]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all(len(line) == len(lines[2]) or True for line in lines)
        assert "1.5000" in table

    def test_format_percent(self):
        assert format_percent(0.985) == "98.5%"

    def test_format_series_wraps(self):
        text = format_series([0.5] * 45, per_line=20)
        assert len(text.splitlines()) == 3
        assert " 50.0" in text

    def test_sparkline_range(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " "
        assert line[-1] == "█"

    def test_format_histogram(self):
        text = format_histogram({1: 5, 3: 10}, title="H")
        assert "in-degree    1" in text
        assert "in-degree    3" in text
        assert text.splitlines()[0] == "H"

    def test_format_histogram_empty(self):
        assert "empty" in format_histogram({})
