"""Integration tests for the asyncio TCP runtime.

These run real loopback sockets: a handful of nodes, generous timeouts.
The point is that the *identical* protocol code behaves over TCP as it
does in the simulator: joins build symmetric views, floods deliver to
everyone, crashed peers are detected through connection resets and
replaced from passive views.
"""

import asyncio

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import HyParViewConfig
from repro.runtime.cluster import LocalCluster
from repro.runtime.node import RuntimeNode

CONFIG = HyParViewConfig(
    active_view_capacity=3,
    passive_view_capacity=8,
    arwl=3,
    prwl=2,
    neighbor_request_timeout=1.0,
    promotion_retry_delay=0.1,
    promotion_max_passes=10,
)


def run(coroutine, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


class TestNodeLifecycle:
    def test_start_assigns_real_port(self):
        async def scenario():
            node = RuntimeNode(config=CONFIG)
            identity = await node.start()
            assert identity.port != 0
            await node.stop()

        run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            node = RuntimeNode(config=CONFIG)
            await node.start()
            with pytest.raises(ConfigurationError):
                await node.start()
            await node.stop()

        run(scenario())

    def test_operations_before_start_rejected(self):
        node = RuntimeNode(config=CONFIG)
        with pytest.raises(ConfigurationError):
            node.broadcast("x")

    def test_unknown_broadcast_layer_rejected(self):
        with pytest.raises(ConfigurationError):
            RuntimeNode(broadcast="smoke-signals")


class TestJoinAndViews:
    def test_pairwise_join_builds_symmetric_link(self):
        async def scenario():
            a = RuntimeNode(config=CONFIG, seed=1)
            b = RuntimeNode(config=CONFIG, seed=2)
            await a.start()
            await b.start()
            b.join(a.node_id)
            for _ in range(100):
                if a.node_id in b.active_view() and b.node_id in a.active_view():
                    break
                await asyncio.sleep(0.05)
            assert a.node_id in b.active_view()
            assert b.node_id in a.active_view()
            await a.stop()
            await b.stop()

        run(scenario())

    def test_cluster_views_populated(self):
        async def scenario():
            cluster = LocalCluster(6, config=CONFIG)
            await cluster.start()
            try:
                assert await cluster.wait_for_views(minimum=1, timeout=10.0)
            finally:
                await cluster.stop()

        run(scenario())


class TestBroadcast:
    def test_flood_reaches_all_nodes(self):
        async def scenario():
            cluster = LocalCluster(6, config=CONFIG)
            await cluster.start()
            try:
                assert await cluster.wait_for_views(minimum=1, timeout=10.0)
                message_id = cluster.nodes[0].broadcast({"value": 42})
                count = await cluster.wait_for_delivery(message_id, expected=6, timeout=10.0)
                assert count == 6
                payloads = {
                    tuple(sorted(p.items()))
                    for node in cluster.nodes
                    for mid, p in node.delivered
                    if mid == message_id
                }
                assert payloads == {(("value", 42),)}
            finally:
                await cluster.stop()

        run(scenario())

    def test_plumtree_over_tcp(self):
        async def scenario():
            cluster = LocalCluster(5, config=CONFIG, broadcast="plumtree")
            await cluster.start()
            try:
                assert await cluster.wait_for_views(minimum=1, timeout=10.0)
                message_id = cluster.nodes[1].broadcast("tree")
                count = await cluster.wait_for_delivery(message_id, expected=5, timeout=10.0)
                assert count == 5
            finally:
                await cluster.stop()

        run(scenario())


@pytest.mark.slow
class TestFailureDetectionOverTcp:
    def test_crash_detected_and_views_cleaned(self):
        async def scenario():
            cluster = LocalCluster(6, config=CONFIG)
            await cluster.start()
            try:
                assert await cluster.wait_for_views(minimum=1, timeout=10.0)
                victim = cluster.nodes[3]
                victim_id = victim.node_id
                await victim.crash()  # abrupt: no DISCONNECTs sent
                deadline = asyncio.get_running_loop().time() + 10.0
                while asyncio.get_running_loop().time() < deadline:
                    holders = [
                        node
                        for node in cluster.nodes
                        if node is not victim and victim_id in node.active_view()
                    ]
                    if not holders:
                        break
                    await asyncio.sleep(0.1)
                assert not holders
                # The overlay still delivers after the repair.
                message_id = cluster.nodes[0].broadcast("post-crash")
                count = await cluster.wait_for_delivery(message_id, expected=5, timeout=10.0)
                assert count >= 5
            finally:
                for node in cluster.nodes:
                    await node.stop()

        run(scenario())

    def test_graceful_leave_sends_disconnects(self):
        async def scenario():
            cluster = LocalCluster(5, config=CONFIG)
            await cluster.start()
            try:
                assert await cluster.wait_for_views(minimum=1, timeout=10.0)
                leaver = cluster.nodes[2]
                leaver_id = leaver.node_id
                await leaver.stop()
                await asyncio.sleep(1.0)
                for node in cluster.nodes:
                    if node is not leaver:
                        assert leaver_id not in node.active_view()
            finally:
                for node in cluster.nodes:
                    await node.stop()

        run(scenario())


@pytest.mark.slow
class TestSelfDrivenCycles:
    def test_periodic_shuffles_populate_passive_views_over_tcp(self):
        async def scenario():
            config = HyParViewConfig(
                active_view_capacity=3,
                passive_view_capacity=8,
                arwl=3,
                prwl=2,
                shuffle_period=0.3,
                neighbor_request_timeout=1.0,
                promotion_retry_delay=0.1,
                promotion_max_passes=5,
            )
            cluster = LocalCluster(6, config=config)
            await cluster.start()
            try:
                assert await cluster.wait_for_views(minimum=1, timeout=10.0)
                for node in cluster.nodes:
                    node.start_cycles()
                deadline = asyncio.get_running_loop().time() + 10.0
                while asyncio.get_running_loop().time() < deadline:
                    sizes = [len(node.passive_view()) for node in cluster.nodes]
                    if all(size >= 2 for size in sizes):
                        break
                    await asyncio.sleep(0.2)
                assert all(len(node.passive_view()) >= 2 for node in cluster.nodes)
            finally:
                await cluster.stop()

        run(scenario())
