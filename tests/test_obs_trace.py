"""Tests for causal dissemination tracing (repro.obs.trace).

Three layers: the :class:`TraceSegment` sink contract (filtering,
bounding, tuple shape), the :class:`MessageView` broadcast-tree
reconstruction over synthetic records, and the end-to-end properties the
tentpole promises — tracing off costs nothing and changes nothing,
tracing on yields identical traces across the workers x cells x
snapshot-cache execution matrix and across the Kernel seam.
"""

from __future__ import annotations

import pytest

from repro.experiments.params import ExperimentParams
from repro.experiments.runner import run_scenarios
from repro.experiments.scenario import Scenario
from repro.obs.context import activate_collector, current_collector, deactivate_collector
from repro.obs.trace import DisseminationTrace, MessageView, TraceCollector, TraceSegment


class FakeGossip:
    """Duck-typed payload message: message_id plus a hop counter."""

    def __init__(self, mid, hops=None):
        self.message_id = mid
        if hops is not None:
            self.hops = hops


class FakeJoin:
    """Membership-style message: no message_id, must never be recorded."""


@pytest.fixture(autouse=True)
def _no_leaked_collector():
    deactivate_collector()
    yield
    deactivate_collector()


class TestTraceSegment:
    def test_records_only_messages_with_an_id(self):
        segment = TraceSegment()
        segment.record(0.0, "send", "a", "b", FakeJoin())
        segment.record(0.0, "probe", "a", "b", None)
        assert segment.records == []
        segment.record(0.5, "send", "a", "b", FakeGossip("a#0", hops=1))
        assert segment.records == [(0.5, "send", "FakeGossip", "a", "b", "a#0", 1)]

    def test_depth_falls_back_to_round_then_none(self):
        class Rounded:
            message_id = "a#1"
            round = 3

        class Flat:
            message_id = "a#2"

        segment = TraceSegment()
        segment.record(0.0, "send", "a", "b", Rounded())
        segment.record(0.0, "send", "a", "b", Flat())
        assert segment.records[0][6] == 3
        assert segment.records[1][6] is None

    def test_bounded_drops_newest_and_counts(self):
        segment = TraceSegment(limit=3)
        for i in range(10):
            segment.record(float(i), "send", "a", "b", FakeGossip(f"a#{i}"))
        assert len(segment.records) == 3
        assert segment.dropped == 7
        # The tree prefix survives; the newest records are the dropped ones.
        assert [r[0] for r in segment.records] == [0.0, 1.0, 2.0]

    def test_export_is_json_safe(self):
        segment = TraceSegment()
        segment.record(0.0, "send", "a", "b", FakeGossip("a#0", hops=1))
        exported = segment.export()
        assert exported == {
            "records": [[0.0, "send", "FakeGossip", "a", "b", "a#0", 1]],
            "dropped": 0,
        }


class TestTraceCollector:
    def test_empty_segments_dropped_at_export(self):
        collector = TraceCollector()
        collector.new_segment()  # stabilization build: never records
        busy = collector.new_segment()
        busy.record(0.0, "send", "a", "b", FakeGossip("a#0"))
        collector.new_segment()
        assert len(collector.export()) == 1

    def test_activation_is_process_local_and_idempotent(self):
        assert current_collector() is None
        collector = TraceCollector()
        activate_collector(collector)
        assert current_collector() is collector
        deactivate_collector()
        deactivate_collector()
        assert current_collector() is None


def _records_for_tree():
    """A two-hop broadcast with one redundant delivery, an ack and a drop."""
    return [
        (0.00, "send", "GossipData", "a:1", "b:1", "a:1#0", 1),
        (0.01, "deliver", "GossipData", "a:1", "b:1", "a:1#0", 1),
        (0.01, "send", "GossipData", "b:1", "c:1", "a:1#0", 2),
        (0.02, "deliver", "GossipData", "b:1", "c:1", "a:1#0", 2),
        (0.02, "send", "GossipData", "a:1", "c:1", "a:1#0", 1),
        (0.03, "deliver", "GossipData", "a:1", "c:1", "a:1#0", 1),  # redundant
        (0.03, "deliver", "GossipAck", "c:1", "b:1", "a:1#0", None),
        (0.04, "drop-loss", "GossipData", "a:1", "d:1", "a:1#0", 1),
    ]


class TestMessageView:
    def test_tree_reconstruction(self):
        view = MessageView(0, "a:1#0", _records_for_tree())
        assert view.origin == "a:1"
        assert view.deliveries == 2
        assert view.depth == 2
        assert [(e.parent, e.child, e.depth) for e in view.edges] == [
            ("a:1", "b:1", 1),
            ("b:1", "c:1", 2),
        ]
        assert view.redundant == 1
        assert view.acks == 1
        assert view.drops == 1
        assert view.max_fanout == 1
        assert view.time_to_full_delivery == pytest.approx(0.02)
        assert view.hop_latencies() == [pytest.approx(0.01)] * 2

    def test_send_matching_is_fifo_per_link(self):
        records = [
            (0.0, "send", "GossipData", "a", "b", "a#0", 1),
            (0.5, "send", "GossipData", "a", "b", "a#0", 1),
            (1.0, "deliver", "GossipData", "a", "b", "a#0", 1),
        ]
        view = MessageView(0, "a#0", records)
        assert view.edges[0].send_time == 0.0
        assert view.edges[0].latency == pytest.approx(1.0)

    def test_depth_chains_when_message_has_no_counter(self):
        records = [
            (0.0, "deliver", "BRBSend", "a", "b", "a#0", None),
            (0.1, "deliver", "BRBSend", "b", "c", "a#0", None),
        ]
        view = MessageView(0, "a#0", records)
        assert [e.depth for e in view.edges] == [1, 2]
        assert view.depth == 2

    def test_summary_is_json_safe_and_complete(self):
        summary = MessageView(0, "a:1#0", _records_for_tree()).summary()
        assert summary["message"] == "0/a:1#0"
        assert summary["deliveries"] == 2
        assert summary["mean_fanout"] == pytest.approx(1.0)
        assert summary["hop_latency_mean"] == pytest.approx(0.01)

    def test_chrome_trace_shape(self):
        trace = MessageView(0, "a:1#0", _records_for_tree()).chrome_trace()
        events = trace["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        hops = [e for e in events if e["ph"] == "X"]
        assert len(metadata) == 3  # a:1, b:1, c:1 tracks
        assert len(hops) == 2
        assert hops[0]["ts"] == pytest.approx(0.0)
        assert hops[0]["dur"] == pytest.approx(10_000.0)  # 0.01 s in us
        assert trace["otherData"]["message"] == "0/a:1#0"


class TestDisseminationTrace:
    def _two_segments(self):
        return DisseminationTrace(
            [
                {"records": [[0.0, "send", "GossipData", "a", "b", "a#0", 1]], "dropped": 2},
                {
                    "records": [
                        [0.0, "send", "GossipData", "a", "b", "a#0", 1],
                        [0.1, "send", "GossipData", "b", "c", "b#0", 1],
                    ],
                    "dropped": 0,
                },
            ]
        )

    def test_counts_and_key_order(self):
        trace = self._two_segments()
        assert trace.segment_count == 2
        assert trace.record_count == 3
        assert trace.dropped_records == 2
        assert trace.message_keys() == ["0/a#0", "1/a#0", "1/b#0"]

    def test_bare_id_resolves_only_when_unique(self):
        trace = self._two_segments()
        assert trace.message("b#0").key == "1/b#0"
        with pytest.raises(KeyError, match="qualify it as"):
            trace.message("a#0")
        assert trace.message("0/a#0").segment == 0

    def test_unknown_ids_are_structured_errors(self):
        trace = self._two_segments()
        with pytest.raises(KeyError, match="unknown message id"):
            trace.message("z#9")
        with pytest.raises(KeyError, match="unknown"):
            trace.message("7/a#0")

    def test_kind_counts_are_sorted(self):
        counts = self._two_segments().kind_counts()
        assert counts == {"send/GossipData": 3}
        assert list(counts) == sorted(counts)

    def test_from_artifact_selects_replicate(self):
        artifact = {
            "schema": "repro-trace/1",
            "replicates": [
                {"replicate": 0, "segments": []},
                {
                    "replicate": 1,
                    "segments": [
                        {"records": [[0.0, "send", "GossipData", "a", "b", "a#0", 1]], "dropped": 0}
                    ],
                },
            ],
        }
        assert DisseminationTrace.from_artifact(artifact, replicate=1).record_count == 1
        with pytest.raises(KeyError):
            DisseminationTrace.from_artifact(artifact, replicate=9)


class TestScenarioIntegration:
    def test_tracing_off_attaches_nothing(self):
        scenario = Scenario(
            "hyparview", ExperimentParams.scaled(40, seed=7, stabilization_cycles=3)
        )
        assert scenario.network.trace is None

    def test_membership_traffic_records_nothing(self):
        # Stabilization (joins, shuffles, probes) carries no message_id, so
        # an attached segment stays empty — the property that keeps traces
        # identical whether bases are rebuilt or thawed from the cache.
        collector = TraceCollector()
        activate_collector(collector)
        scenario = Scenario(
            "hyparview", ExperimentParams.scaled(40, seed=7, stabilization_cycles=3)
        )
        scenario.build_overlay()
        scenario.run_cycles(2)
        assert scenario.network.trace is not None
        assert scenario.network.trace.records == []
        assert collector.export() == []

    def test_broadcast_records_and_reconstructs(self):
        collector = TraceCollector()
        activate_collector(collector)
        scenario = Scenario(
            "hyparview", ExperimentParams.scaled(40, seed=7, stabilization_cycles=3)
        )
        scenario.build_overlay()
        summary = scenario.send_broadcast()
        segments = collector.export()
        assert len(segments) == 1
        view = DisseminationTrace(segments)
        keys = view.message_keys()
        assert len(keys) == 1
        message = view.message(keys[0])
        # The reconstructed tree agrees with the tracker's own count.
        assert message.deliveries == summary.delivered - 1  # origin self-delivers
        assert message.depth >= 1

    def test_freeze_strips_the_trace_sink(self):
        collector = TraceCollector()
        activate_collector(collector)
        scenario = Scenario(
            "hyparview", ExperimentParams.scaled(40, seed=7, stabilization_cycles=3)
        )
        scenario.build_overlay()
        frozen = scenario.freeze()
        assert b"TraceSegment" not in frozen
        # The live scenario keeps its sink after freezing...
        assert scenario.network.trace is not None
        # ...and a thaw under an active collector gets a *fresh* segment.
        thawed = Scenario.thaw(frozen)
        assert thawed.network.trace is not None
        assert thawed.network.trace is not scenario.network.trace
        deactivate_collector()
        assert Scenario.thaw(frozen).network.trace is None


def _traced_fig2(**overrides):
    traces: dict[str, list] = {}
    overrides.setdefault("workers", 1)
    run_scenarios(["fig2_reliability"], "smoke", trace=True, traces=traces, **overrides)
    return traces["fig2_reliability"]


class TestExecutionMatrix:
    def test_traces_identical_across_workers_cells_and_cache(self):
        baseline = _traced_fig2()
        assert baseline, "fig2 smoke produced no trace"
        assert any(e["segments"] for e in baseline)
        assert baseline == _traced_fig2(cells=False)
        assert baseline == _traced_fig2(snapshot_cache=False)
        assert baseline == _traced_fig2(workers=2)

    def test_counter_parity_across_the_kernel_seam(self):
        from repro.sim.engine import events_fired_total

        def run(kernel, shards):
            before = events_fired_total()
            entries = _traced_fig2(snapshot_cache=False, kernel=kernel, shards=shards)
            fired = events_fired_total() - before
            view = DisseminationTrace(
                [seg for entry in entries for seg in entry["segments"]]
            )
            deliveries = {v.key: v.deliveries for v in view.messages()}
            return fired, deliveries, view.kind_counts()

        single = run("single", None)
        sharded = run("sharded", 2)
        assert single[0] > 0
        assert single[0] == sharded[0]  # events_fired_total parity
        assert single[1] == sharded[1]  # per-message delivery parity
        assert single[2] == sharded[2]  # full kind/type census parity


class TestArtifactRoundTrip:
    def test_trace_and_metrics_files(self, tmp_path):
        import json

        from repro.experiments.reporting import load_trace
        from repro.experiments.runner import write_trace_artifacts

        traces = {"fig2_reliability": _traced_fig2()}
        paths = write_trace_artifacts(traces, tmp_path, tier="smoke", root_seed=42)
        assert sorted(p.name for p in paths) == [
            "METRICS_fig2_reliability.json",
            "TRACE_fig2_reliability.json",
        ]
        artifact = load_trace(tmp_path / "TRACE_fig2_reliability.json")
        reloaded = DisseminationTrace.from_artifact(artifact, replicate=0)
        original = DisseminationTrace(traces["fig2_reliability"][0]["segments"])
        assert reloaded.message_keys() == original.message_keys()
        assert reloaded.kind_counts() == original.kind_counts()
        metrics = json.loads((tmp_path / "METRICS_fig2_reliability.json").read_text())
        assert metrics["schema"] == "repro-metrics/1"
        row = metrics["replicates"][0]
        assert row["records"] == original.record_count
        assert row["dropped_records"] == 0
        assert row["messages"] == len(original.message_keys())

    def test_trace_loader_rejects_other_schemas(self, tmp_path):
        import json

        from repro.experiments.reporting import load_trace

        bogus = tmp_path / "TRACE_x.json"
        bogus.write_text(json.dumps({"schema": "repro-bench/1"}))
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_trace(bogus)
