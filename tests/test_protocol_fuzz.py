"""Property-based fuzzing of the HyParView state machine.

Hypothesis drives random interleavings of joins, crashes, graceful leaves,
membership cycles and broadcasts against a small simulated network, then
checks the protocol's global invariants at quiescence:

* a node never appears in its own views;
* active and passive views are disjoint and within capacity;
* the active-view graph over live nodes is symmetric (Section 4.1) —
  guaranteed at quiescence under per-pair FIFO delivery, which the
  constant-latency network provides;
* live nodes never hold crashed nodes in their active views once they have
  observed the crash (watch notifications are drained);
* a broadcast reaches exactly the origin's connected component (flooding
  is deterministic).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import HyParViewConfig
from repro.metrics.graph import OverlaySnapshot
from repro.sim.network import ByzantineBehavior

from repro.testing import World

CONFIG = HyParViewConfig(
    active_view_capacity=3,
    passive_view_capacity=6,
    arwl=3,
    prwl=2,
    shuffle_ka=2,
    shuffle_kp=2,
    promotion_retry_delay=0.2,
    promotion_max_passes=5,
)

NODES = 8

operation = st.one_of(
    st.tuples(st.just("join"), st.integers(0, NODES - 1), st.integers(0, NODES - 1)),
    st.tuples(st.just("crash"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("leave"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("cycle"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("broadcast"), st.integers(0, NODES - 1), st.just(0)),
    # A peer that starts equivocating (different corrupted flood payload
    # per destination) — membership must be unaffected, since corruption
    # touches only gossip payloads, never the view-maintenance frames.
    st.tuples(st.just("equivocate"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("honest"), st.integers(0, NODES - 1), st.just(0)),
)


class Fuzzer:
    def __init__(self, seed: int) -> None:
        self.world = World(seed=seed)
        self.pairs = [self.world.hyparview(config=CONFIG) for _ in range(NODES)]
        self.nodes = [node for node, _ in self.pairs]
        self.protocols = [protocol for _, protocol in self.pairs]
        self.layers = [
            self.world.with_flood(node, protocol) for node, protocol in self.pairs
        ]
        # Bootstrap: everyone joins through node 0 so there is an overlay
        # to perturb.
        self.world.join_chain(self.protocols)

    def alive(self, index: int) -> bool:
        return self.nodes[index].alive

    def apply(self, op: tuple) -> None:
        kind, a, b = op
        if kind == "join":
            if a != b and self.alive(a) and self.alive(b):
                # Re-joining while already joined is legal (a reconnecting
                # node); the protocol must tolerate it.
                self.protocols[a].join(self.protocols[b].address)
        elif kind == "crash":
            if self.alive(a) and self._alive_count() > 2:
                self.world.network.fail(self.nodes[a].node_id)
        elif kind == "leave":
            if self.alive(a) and self._alive_count() > 2:
                self.protocols[a].leave()
                self.world.drain()
                self.world.network.fail(self.nodes[a].node_id)
        elif kind == "cycle":
            if self.alive(a):
                self.protocols[a].cycle()
        elif kind == "broadcast":
            if self.alive(a):
                self.layers[a].broadcast(None)
        elif kind == "equivocate":
            if self.alive(a):
                self.world.network.set_byzantine(
                    self.nodes[a].node_id,
                    ByzantineBehavior(("GossipData",), equivocate=True),
                )
        elif kind == "honest":
            self.world.network.set_byzantine(self.nodes[a].node_id, None)
        self.world.drain()

    def _alive_count(self) -> int:
        return sum(1 for node in self.nodes if node.alive)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        live = {
            node.node_id: protocol
            for node, protocol in zip(self.nodes, self.protocols)
            if node.alive
        }
        for node_id, protocol in live.items():
            active = set(protocol.active_members())
            passive = set(protocol.passive_members())
            assert node_id not in active, "node in own active view"
            assert node_id not in passive, "node in own passive view"
            assert not active & passive, "active and passive views overlap"
            assert len(active) <= CONFIG.active_view_capacity
            assert len(passive) <= CONFIG.passive_view_capacity
        # Symmetry over live pairs at quiescence.
        for node_id, protocol in live.items():
            for peer in protocol.active_members():
                if peer in live:
                    assert node_id in live[peer].active_members(), (
                        f"asymmetric link {node_id} -> {peer}"
                    )

    def check_flood_covers_component(self) -> None:
        live_ids = [node.node_id for node in self.nodes if node.alive]
        if not live_ids:
            return
        views = {
            node.node_id: protocol.active_members()
            for node, protocol in zip(self.nodes, self.protocols)
        }
        snapshot = OverlaySnapshot.from_out_neighbors(views, restrict_to=set(live_ids))
        components = snapshot.connected_components()
        origin_index = next(i for i in range(NODES) if self.nodes[i].alive)
        origin_id = self.nodes[origin_index].node_id
        component = next(c for c in components if origin_id in c)
        message_id = self.layers[origin_index].broadcast("probe")
        self.world.drain()
        delivered = {
            node.node_id
            for node, layer in zip(self.nodes, self.layers)
            if node.alive and layer.has_delivered(message_id)
        }
        assert delivered >= component, (
            f"flood missed nodes in the origin's component: {component - delivered}"
        )


class TestProtocolFuzz:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(operation, max_size=30),
    )
    def test_invariants_hold_under_any_event_sequence(self, seed, operations):
        fuzzer = Fuzzer(seed)
        for op in operations:
            fuzzer.apply(op)
        fuzzer.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(operation, max_size=20),
    )
    def test_flood_reaches_origin_component(self, seed, operations):
        fuzzer = Fuzzer(seed)
        for op in operations:
            fuzzer.apply(op)
        fuzzer.check_flood_covers_component()

    def test_fuzzer_bootstrap_is_sane(self):
        fuzzer = Fuzzer(7)
        fuzzer.check_invariants()
        assert all(len(p.active_members()) >= 1 for p in fuzzer.protocols)


class TestEvictionContention:
    def test_starving_nodes_contending_for_one_slotholder_quiesce(self):
        """Regression (found by hypothesis): several starving nodes whose
        passive views all point at one popular node used to livelock —
        each high-priority NEIGHBOR admission evicted the previous winner,
        whose disconnect-triggered repair re-promoted it with a fresh
        budget, generating an unbounded admit/evict/re-promote message
        cycle that run_until_idle could never drain."""
        operations = [
            ("broadcast", 0, 0), ("leave", 0, 0), ("join", 3, 6),
            ("join", 5, 4), ("join", 0, 3), ("cycle", 6, 0),
            ("crash", 2, 0), ("join", 2, 7), ("crash", 3, 0),
            ("broadcast", 6, 0), ("cycle", 5, 0),
        ]
        fuzzer = Fuzzer(2403)
        for op in operations:
            fuzzer.apply(op)  # raised SimulationError (runaway) before
        fuzzer.check_invariants()
