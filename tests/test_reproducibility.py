"""Determinism and seed-robustness guarantees.

The library promises exact reproducibility from ``(seed, params)`` and
paper-shaped results that do not hinge on a lucky seed; both are regression
targets here.
"""

import pytest

from repro.experiments.failures import run_failure_experiment
from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario

PROTOCOLS = ("hyparview", "cyclon", "cyclon-acked", "scamp", "plumtree")


def fingerprint(protocol: str, seed: int, n: int = 60, cycles: int = 5) -> tuple:
    params = ExperimentParams.scaled(n, seed=seed, stabilization_cycles=cycles)
    scenario = Scenario(protocol, params)
    scenario.build_overlay()
    scenario.run_cycles(cycles)
    summaries = scenario.send_broadcasts(3)
    views = tuple(
        tuple(sorted(str(peer) for peer in scenario.membership(node_id).out_neighbors()))
        for node_id in scenario.node_ids
    )
    deliveries = tuple((s.delivered, s.max_hops) for s in summaries)
    return views, deliveries, scenario.engine.processed


class TestDeterminism:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_same_seed_same_run(self, protocol):
        assert fingerprint(protocol, seed=5) == fingerprint(protocol, seed=5)

    def test_different_seed_different_overlay(self):
        assert fingerprint("hyparview", seed=5) != fingerprint("hyparview", seed=6)

    def test_protocols_do_not_share_randomness(self):
        """Changing the gossip fanout must not perturb membership (isolated
        RNG streams per protocol slot)."""
        params = ExperimentParams.scaled(60, stabilization_cycles=4)

        def overlay(fanout):
            import dataclasses

            p = dataclasses.replace(params, fanout=fanout)
            scenario = Scenario("cyclon", p)
            scenario.build_overlay()
            scenario.run_cycles(4)
            return tuple(
                tuple(sorted(str(x) for x in scenario.membership(n).out_neighbors()))
                for n in scenario.node_ids
            )

        assert overlay(2) == overlay(5)


@pytest.mark.slow
class TestSeedRobustness:
    def test_headline_holds_across_seeds(self):
        """Figure 2's key cell — HyParView at 60% failures — must hold for
        any seed, not just the default."""
        for seed in (1, 7, 1234):
            params = ExperimentParams.scaled(200, seed=seed, stabilization_cycles=15)
            result = run_failure_experiment("hyparview", params, 0.6, messages=30)
            assert result.tail_average(10) > 0.93, f"seed {seed}: {result.series}"

    def test_protocol_ordering_holds_across_seeds(self):
        for seed in (3, 99):
            params = ExperimentParams.scaled(200, seed=seed, stabilization_cycles=15)
            hyparview = run_failure_experiment("hyparview", params, 0.5, messages=20)
            cyclon = run_failure_experiment("cyclon", params, 0.5, messages=20)
            assert hyparview.average > cyclon.average + 0.1, f"seed {seed}"
