"""Tests for the Plumtree extension (epidemic broadcast trees)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import HyParViewConfig
from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario
from repro.gossip.plumtree import PlumtreeConfig

SMALL = HyParViewConfig(active_view_capacity=3, passive_view_capacity=6)


def plumtree_world(world, count, config=SMALL, tree_config=None):
    nodes = world.hyparview_many(count, config=config)
    layers = [world.with_plumtree(node, proto, config=tree_config) for node, proto in nodes]
    world.join_chain([p for _, p in nodes])
    return nodes, layers


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlumtreeConfig(missing_timeout=0)
        with pytest.raises(ConfigurationError):
            PlumtreeConfig(graft_timeout=0)
        with pytest.raises(ConfigurationError):
            PlumtreeConfig(payload_cache=0)


class TestDissemination:
    def test_first_broadcast_reaches_everyone(self, world):
        nodes, layers = plumtree_world(world, 10)
        mid = layers[0].broadcast("x")
        world.drain()
        for layer in layers:
            assert layer.has_delivered(mid)

    def test_eager_peers_track_active_view(self, world):
        nodes, layers = plumtree_world(world, 6)
        for (node, proto), layer in zip(nodes, layers):
            assert layer.eager_peers | layer.lazy_peers <= set(proto.active_members())
            # before any traffic, every active link is eager
            assert layer.eager_peers == set(proto.active_members())

    def test_duplicates_prune_tree_edges(self, world):
        nodes, layers = plumtree_world(world, 10)
        layers[0].broadcast("a")
        world.drain()
        total_prunes = sum(layer.prunes_sent for layer in layers)
        assert total_prunes > 0  # cyclic overlay must prune to a tree
        lazy_total = sum(len(layer.lazy_peers) for layer in layers)
        assert lazy_total > 0

    def test_tree_stabilizes_payload_traffic(self, world):
        """After convergence a broadcast sends ~n-1 payloads (tree edges)
        instead of ~sum of active view sizes (flood)."""
        nodes, layers = plumtree_world(world, 12)
        for i in range(5):  # let the tree converge
            layers[0].broadcast(f"warm-{i}")
            world.drain()
        before = world.network.stats.messages_by_type.get("PlumtreeGossip", 0)
        layers[0].broadcast("measured")
        world.drain()
        after = world.network.stats.messages_by_type.get("PlumtreeGossip", 0)
        payloads = after - before
        assert payloads <= len(nodes) + 3  # ≈ n-1 tree edges, small slack

    def test_deliveries_exactly_once_per_node(self, world):
        nodes, layers = plumtree_world(world, 10)
        for i in range(3):
            layers[i].broadcast(f"m{i}")
            world.drain()
        assert all(layer.delivered_count == 3 for layer in layers)


class TestTreeRepair:
    def test_graft_recovers_missing_payload_after_failure(self, world):
        nodes, layers = plumtree_world(world, 12)
        for i in range(4):
            layers[0].broadcast(f"warm-{i}")
            world.drain()
        # Kill a node that is an eager peer of someone; tree breaks, lazy
        # IHAVE links must repair delivery via GRAFT.
        victim_node, victim_proto = nodes[5]
        world.network.fail(victim_node.node_id)
        mid = layers[0].broadcast("after-failure")
        world.drain()
        delivered = sum(
            1
            for (node, _), layer in zip(nodes, layers)
            if node.node_id != victim_node.node_id and layer.has_delivered(mid)
        )
        assert delivered == len(nodes) - 1

    def test_neighbor_down_removes_peer_from_sets(self, world):
        nodes, layers = plumtree_world(world, 6)
        (node_a, proto_a), layer_a = nodes[0], layers[0]
        peer = proto_a.active_members()[0]
        proto_a.report_failure(peer)
        assert peer not in layer_a.eager_peers
        assert peer not in layer_a.lazy_peers

    def test_neighbor_up_becomes_eager(self, world):
        nodes, layers = plumtree_world(world, 6)
        (node_a, proto_a), layer_a = nodes[0], layers[0]
        (node_b, proto_b), layer_b = nodes[-1], layers[-1]
        if proto_b.address not in proto_a.active:
            proto_a._add_to_active(proto_b.address)
            assert proto_b.address in layer_a.eager_peers

    def test_graft_answers_with_payload(self, world):
        nodes, layers = plumtree_world(world, 8)
        mid = layers[0].broadcast("payload")
        world.drain()
        from repro.gossip.messages import PlumtreeGraft

        # Simulate a lost eager copy: ask node 0 directly via GRAFT.
        requester = nodes[1][1].address
        layers[0].handle_graft(PlumtreeGraft(mid, 1, requester))
        world.drain()
        assert layers[1].duplicate_count >= 1  # re-sent payload arrived

    def test_missing_timer_tries_next_announcer(self, world):
        tree_config = PlumtreeConfig(missing_timeout=0.05, graft_timeout=0.02)
        nodes, layers = plumtree_world(world, 12, tree_config=tree_config)
        for i in range(4):
            layers[0].broadcast(f"warm-{i}")
            world.drain()
        grafts_before = sum(layer.grafts_sent for layer in layers)
        victim_node, _ = nodes[4]
        world.network.fail(victim_node.node_id)
        layers[0].broadcast("needs-repair")
        world.drain()
        grafts_after = sum(layer.grafts_sent for layer in layers)
        # Repair may or may not need grafts depending on tree shape; at
        # minimum the counter must be monotone and the run must terminate.
        assert grafts_after >= grafts_before


class TestPlumtreeVsFloodTraffic:
    @pytest.mark.slow
    def test_payload_savings_at_scenario_scale(self):
        params = ExperimentParams.scaled(150, stabilization_cycles=10)
        flood = Scenario("hyparview", params)
        flood.build_overlay()
        flood.stabilize()
        flood.send_broadcasts(5)
        start = flood.network.stats.messages_by_type.get("GossipData", 0)
        flood.send_broadcasts(10)
        flood_payloads = flood.network.stats.messages_by_type.get("GossipData", 0) - start

        tree = Scenario("plumtree", params)
        tree.build_overlay()
        tree.stabilize()
        tree.send_broadcasts(5)  # converge the tree
        start = tree.network.stats.messages_by_type.get("PlumtreeGossip", 0)
        tree.send_broadcasts(10)
        tree_payloads = tree.network.stats.messages_by_type.get("PlumtreeGossip", 0) - start

        assert tree_payloads < flood_payloads * 0.55  # tree ≈ (n-1) vs flood ≈ 2.5n
