"""Tests for the experiments CLI (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.n == 200
        assert args.seed == 42
        assert args.messages == 10

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "2", "--n", "100"])
        assert args.which == "2"
        assert args.n == 100
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "nope"])

    def test_healing_failure_list(self):
        args = build_parser().parse_args(["healing", "--failures", "0.1", "0.5"])
        assert args.failures == [0.1, 0.5]

    def test_paper_params_flag(self):
        args = build_parser().parse_args(["quickstart", "--paper-params"])
        assert args.paper_params is True


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--n", "60", "--messages", "3"]) == 0
        out = capsys.readouterr().out
        assert "avg reliability" in out
        assert "1.0000" in out

    def test_figure_1a(self, capsys):
        assert main(["figure", "1a", "--n", "60", "--messages", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out
        assert "flood" in out

    def test_figure_1c(self, capsys):
        assert main(["figure", "1c", "--n", "60", "--messages", "5"]) == 0
        out = capsys.readouterr().out
        assert "cyclon" in out
        assert "scamp" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1", "--n", "60", "--messages", "3"]) == 0
        out = capsys.readouterr().out
        assert "hyparview" in out
        assert "avg clustering" in out

    def test_figure_5(self, capsys):
        assert main(["figure", "5", "--n", "60"]) == 0
        out = capsys.readouterr().out
        assert "in-degree" in out

    def test_healing(self, capsys):
        assert main(["healing", "--n", "60", "--failures", "0.3", "--max-cycles", "5"]) == 0
        out = capsys.readouterr().out
        assert "cycles to heal" in out

    def test_compare(self, capsys):
        assert main(["compare", "--n", "60", "--failures", "0.4", "--messages", "3"]) == 0
        out = capsys.readouterr().out
        assert "hyparview" in out
        assert "40%" in out

    def test_ablation_resend(self, capsys):
        assert main(
            ["ablation", "resend", "--n", "60", "--failure", "0.4", "--messages", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "resend" in out
