"""Tests for the experiments CLI (python -m repro)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_quickstart_defaults(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.n == 200
        assert args.seed == 42
        assert args.messages == 10

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "2", "--n", "100"])
        assert args.which == "2"
        assert args.n == 100
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "nope"])

    def test_healing_failure_list(self):
        args = build_parser().parse_args(["healing", "--failures", "0.1", "0.5"])
        assert args.failures == [0.1, 0.5]

    def test_paper_params_flag(self):
        args = build_parser().parse_args(["quickstart", "--paper-params"])
        assert args.paper_params is True


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--n", "60", "--messages", "3"]) == 0
        out = capsys.readouterr().out
        assert "avg reliability" in out
        assert "1.0000" in out

    def test_figure_1a(self, capsys):
        assert main(["figure", "1a", "--n", "60", "--messages", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out
        assert "flood" in out

    def test_figure_1c(self, capsys):
        assert main(["figure", "1c", "--n", "60", "--messages", "5"]) == 0
        out = capsys.readouterr().out
        assert "cyclon" in out
        assert "scamp" in out

    def test_figure_table1(self, capsys):
        assert main(["figure", "table1", "--n", "60", "--messages", "3"]) == 0
        out = capsys.readouterr().out
        assert "hyparview" in out
        assert "avg clustering" in out

    def test_figure_5(self, capsys):
        assert main(["figure", "5", "--n", "60"]) == 0
        out = capsys.readouterr().out
        assert "in-degree" in out

    def test_healing(self, capsys):
        assert main(["healing", "--n", "60", "--failures", "0.3", "--max-cycles", "5"]) == 0
        out = capsys.readouterr().out
        assert "cycles to heal" in out

    def test_compare(self, capsys):
        assert main(["compare", "--n", "60", "--failures", "0.4", "--messages", "3"]) == 0
        out = capsys.readouterr().out
        assert "hyparview" in out
        assert "40%" in out

    def test_ablation_resend(self, capsys):
        assert main(
            ["ablation", "resend", "--n", "60", "--failure", "0.4", "--messages", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "resend" in out


class TestChaosAndServiceCli:
    """The live-runtime subcommands' argument and error surfaces.

    (The happy paths open real sockets and are covered by the runtime
    integration tests; here we pin parsing and the structured exit-2
    error contract.)
    """

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.nodes == 8
        assert args.plan is None

    def test_chaos_oversized_plan_is_structured_error(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '{"label": "big", "events": '
            '[{"kind": "crash", "at": 0.1, "count": 64}]}'
        )
        assert main(["chaos", "--nodes", "4", "--plan", str(plan)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "64" in err and "4" in err  # needed vs. actual, for operators

    def test_chaos_malformed_plan_file_is_structured_error(self, tmp_path, capsys):
        plan = tmp_path / "bad.json"
        plan.write_text("{this is not json")
        assert main(["chaos", "--nodes", "4", "--plan", str(plan)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_chaos_simulator_only_plan_is_structured_error(self, tmp_path, capsys):
        plan = tmp_path / "byz.json"
        plan.write_text(
            '{"label": "byz", "events": '
            '[{"kind": "equivocation", "at": 0.1, "count": 2}]}'
        )
        assert main(["chaos", "--nodes", "4", "--plan", str(plan)]) == 2
        err = capsys.readouterr().err
        assert "simulator" in err
        assert "equivocate" in err

    def test_chaos_collusion_drop_plan_parses(self, tmp_path):
        # Drop-only collusion runs on the live substrate, so it passes
        # plan validation (the run itself needs sockets; not tested here).
        from repro.faults import plan_from_file
        from repro.faults.chaos import reject_simulator_only

        plan = tmp_path / "collude.json"
        plan.write_text(
            '{"label": "collude", "events": [{"kind": "collusion", '
            '"at": 0.1, "count": 2, "drop_types": ["GossipData"]}]}'
        )
        reject_simulator_only(plan_from_file(plan))  # does not raise

    def test_chaos_missing_plan_file_is_structured_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["chaos", "--plan", str(missing)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_service_bench_defaults(self):
        args = build_parser().parse_args(["service-bench"])
        assert args.nodes == 3
        assert args.clients == 100
        assert args.topics == 2
        assert args.no_chaos is False
        assert args.out is None

    def test_service_bench_invalid_size_is_structured_error(self, capsys):
        assert main(["service-bench", "--nodes", "1"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_service_bench_metrics_port_default_is_ephemeral(self):
        assert build_parser().parse_args(["service-bench"]).metrics_port == 0


TRACE_ARGS = [
    "trace",
    "--scenario",
    "fig2_reliability",
    "--n",
    "40",
    "--messages",
    "2",
    "--replicates",
    "1",
]


class TestTraceCli:
    """The dissemination-trace subcommand: summary tables, Chrome-trace
    dumps and the same structured exit-2 error contract as chaos/bench."""

    def test_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.scenario == "fig2_reliability"
        assert args.tier == "smoke"
        assert args.replicate == 0
        assert args.message is None

    def test_summary_table(self, capsys):
        assert main(TRACE_ARGS) == 0
        out = capsys.readouterr().out
        assert "dissemination trace: fig2_reliability" in out
        assert "deliveries" in out and "t_full (s)" in out
        assert "segment(s)" in out and "dropped" in out

    def test_message_dump_is_chrome_trace_json(self, capsys):
        import json

        assert main(TRACE_ARGS) == 0
        table = capsys.readouterr().out
        key = next(
            line.split()[0] for line in table.splitlines() if "#" in line and "/" in line
        )
        assert main(TRACE_ARGS + ["--message", key]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["otherData"]["message"] == key
        assert any(event["ph"] == "X" for event in trace["traceEvents"])

    def test_message_dump_to_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "trees" / "msg.json"
        assert main(TRACE_ARGS) == 0
        table = capsys.readouterr().out
        key = next(
            line.split()[0] for line in table.splitlines() if "#" in line and "/" in line
        )
        assert main(TRACE_ARGS + ["--message", key, "--out", str(out)]) == 0
        assert json.loads(out.read_text())["otherData"]["message"] == key

    def test_unknown_message_id_is_structured_error(self, capsys):
        assert main(TRACE_ARGS + ["--message", "zz:0#99"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "unknown message id" in err
        assert "--message" in err  # points back at the id list

    def test_unknown_scenario_is_structured_error(self, capsys):
        assert main(["trace", "--scenario", "fig99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_tier_is_structured_error(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--tier", "galactic"])

    def test_bench_trace_flags_parse(self):
        args = build_parser().parse_args(
            ["bench", "--trace", "--trace-out", "traces", "--scenario", "fig2_reliability"]
        )
        assert args.trace is True
        assert str(args.trace_out) == "traces"
