"""Unit tests for node and message identifiers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.ids import MessageId, NodeId, SequenceGenerator, simulated_node_ids


class TestNodeId:
    def test_structural_equality(self):
        assert NodeId("a", 1) == NodeId("a", 1)
        assert NodeId("a", 1) != NodeId("a", 2)
        assert NodeId("a", 1) != NodeId("b", 1)

    def test_hashable_and_usable_in_sets(self):
        nodes = {NodeId("a", 1), NodeId("a", 1), NodeId("b", 2)}
        assert len(nodes) == 2

    def test_ordering_is_total(self):
        nodes = [NodeId("b", 1), NodeId("a", 2), NodeId("a", 1)]
        assert sorted(nodes) == [NodeId("a", 1), NodeId("a", 2), NodeId("b", 1)]

    def test_str(self):
        assert str(NodeId("host", 80)) == "host:80"

    @given(st.text(min_size=1), st.integers(min_value=0, max_value=65535))
    def test_wire_roundtrip(self, host, port):
        node = NodeId(host, port)
        assert NodeId.from_wire(node.to_wire()) == node


class TestMessageId:
    def test_wire_roundtrip(self):
        mid = MessageId(NodeId("x", 1), 42)
        assert MessageId.from_wire(mid.to_wire()) == mid

    def test_str(self):
        assert str(MessageId(NodeId("x", 1), 7)) == "x:1#7"

    def test_ordering_groups_by_origin(self):
        a0 = MessageId(NodeId("a", 1), 0)
        a1 = MessageId(NodeId("a", 1), 1)
        b0 = MessageId(NodeId("b", 1), 0)
        assert sorted([b0, a1, a0]) == [a0, a1, b0]


class TestSimulatedNodeIds:
    def test_count_and_uniqueness(self):
        ids = simulated_node_ids(100)
        assert len(ids) == 100
        assert len(set(ids)) == 100

    def test_empty(self):
        assert simulated_node_ids(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            simulated_node_ids(-1)

    def test_base_port_offsets(self):
        ids = simulated_node_ids(3, base_port=5000)
        assert [node.port for node in ids] == [5000, 5001, 5002]


class TestSequenceGenerator:
    def test_monotone_unique(self):
        gen = SequenceGenerator(NodeId("a", 1))
        ids = [gen.next_id() for _ in range(10)]
        assert len(set(ids)) == 10
        assert [mid.sequence for mid in ids] == list(range(10))

    def test_distinct_origins_never_collide(self):
        gen_a = SequenceGenerator(NodeId("a", 1))
        gen_b = SequenceGenerator(NodeId("b", 1))
        assert gen_a.next_id() != gen_b.next_id()

    def test_start_offset(self):
        gen = SequenceGenerator(NodeId("a", 1), start=100)
        assert gen.next_id().sequence == 100
