"""Tests for statistics helpers and reliability aggregation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.ids import MessageId, NodeId
from repro.gossip.tracker import BroadcastSummary
from repro.metrics.reliability import (
    atomic_fraction,
    average_reliability,
    healing_cycles,
    max_hops,
    redundancy_ratio,
    reliability_series,
)
from repro.metrics.stats import SummaryStats, mean, percentile, stddev, summarize


def summary(i, reliability, *, sent_at=None, hops=5, delivered=50, redundant=10):
    return BroadcastSummary(
        message_id=MessageId(NodeId("o", 1), i),
        origin=NodeId("o", 1),
        sent_at=float(i) if sent_at is None else sent_at,
        population_size=100,
        delivered=delivered,
        reliability=reliability,
        max_hops=hops,
        last_delivery_at=float(i),
        redundant=redundant,
        transmissions=200,
    )


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_stddev(self):
        assert stddev([2.0, 2.0, 2.0]) == 0.0
        assert stddev([1.0]) == 0.0
        assert stddev([1.0, 3.0]) == pytest.approx(1.0)

    def test_percentile(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 4.0
        assert percentile(data, 50) == pytest.approx(2.5)
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)

    def test_summarize(self):
        stats = summarize([3.0, 1.0, 2.0])
        assert stats == SummaryStats(3, 2.0, stddev([3.0, 1.0, 2.0]), 1.0, 2.0, percentile([1, 2, 3], 95), 3.0)

    def test_summarize_empty(self):
        assert summarize([]).count == 0

    @given(st.lists(st.floats(-1000, 1000), min_size=1, max_size=40))
    def test_summary_bounds_property(self, values):
        stats = summarize(values)
        ulp = 1e-9  # float summation can drift by an ulp around the bounds
        assert stats.minimum <= stats.p50 <= stats.maximum
        assert stats.minimum - ulp <= stats.mean <= stats.maximum + ulp


class TestReliabilityAggregation:
    def test_series_ordered_by_send_time(self):
        summaries = [summary(2, 0.3), summary(0, 0.1), summary(1, 0.2)]
        assert reliability_series(summaries) == [0.1, 0.2, 0.3]

    def test_average(self):
        assert average_reliability([summary(0, 0.5), summary(1, 1.0)]) == 0.75
        assert average_reliability([]) == 0.0

    def test_atomic_fraction(self):
        summaries = [summary(0, 1.0), summary(1, 0.99), summary(2, 1.0)]
        assert atomic_fraction(summaries) == pytest.approx(2 / 3)
        assert atomic_fraction([]) == 0.0

    def test_max_hops_mean(self):
        summaries = [summary(0, 1.0, hops=8), summary(1, 1.0, hops=12)]
        assert max_hops(summaries) == 10.0

    def test_redundancy_ratio(self):
        summaries = [summary(0, 1.0, delivered=100, redundant=50)]
        assert redundancy_ratio(summaries) == 0.5
        assert redundancy_ratio([]) == 0.0


class TestHealingCycles:
    def test_immediate_recovery(self):
        assert healing_cycles(0.99, [1.0, 1.0]) == 1

    def test_delayed_recovery(self):
        assert healing_cycles(0.9, [0.2, 0.5, 0.91]) == 3

    def test_never_recovers(self):
        assert healing_cycles(0.99, [0.5, 0.6, 0.7]) is None

    def test_tolerance(self):
        assert healing_cycles(0.99, [0.985], tolerance=0.01) == 1
        assert healing_cycles(0.99, [0.985], tolerance=0.001) is None

    def test_empty_window(self):
        assert healing_cycles(0.5, []) is None
