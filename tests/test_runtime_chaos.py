"""ChaosController over real loopback TCP: the live half of the fault
vocabulary.

One time-bounded scenario per fault class: partitions block and heal,
crashes+restarts churn the cluster, adversaries silently drop repair
traffic, degradation drops frames.  Small clusters, generous timeouts —
these run in the 3.10-3.12 CI matrix, so they must be robust on loaded
runners, not statistically sharp.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import HyParViewConfig
from repro.faults.chaos import ChaosController
from repro.faults.plan import (
    AdversaryEvent,
    CrashEvent,
    DegradeEvent,
    FaultPlan,
    PartitionEvent,
    RestartEvent,
)
from repro.runtime.cluster import LocalCluster

CONFIG = HyParViewConfig(
    active_view_capacity=3,
    passive_view_capacity=8,
    arwl=3,
    prwl=2,
    neighbor_request_timeout=1.0,
    promotion_retry_delay=0.1,
    promotion_max_passes=10,
)


def run(coroutine, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


class TestControllerValidation:
    def test_time_scale_must_be_positive(self):
        cluster = LocalCluster(2, config=CONFIG)
        with pytest.raises(ConfigurationError, match="time_scale"):
            ChaosController(cluster, FaultPlan.empty(), time_scale=0)

    def test_empty_plan_is_a_noop(self):
        async def scenario():
            cluster = LocalCluster(3, config=CONFIG)
            await cluster.start()
            try:
                controller = ChaosController(cluster, FaultPlan.empty())
                await controller.run()
                assert controller.applied == []
                message_id = await cluster.broadcast_and_settle(settle=0.4)
                assert cluster.delivery_count(message_id) == 3
            finally:
                await cluster.stop()

        run(scenario())


class TestPartitionLive:
    def test_partition_blocks_and_heal_restores_delivery(self):
        async def scenario():
            cluster = LocalCluster(6, config=CONFIG, base_seed=11)
            await cluster.start()
            try:
                plan = FaultPlan(
                    events=(
                        PartitionEvent(
                            at=0.0, weights=(0.5, 0.5), heal_at=0.8, rejoin=3
                        ),
                    ),
                    label="live-partition",
                )
                controller = ChaosController(cluster, plan, seed=3)
                chaos = asyncio.create_task(controller.run())
                await asyncio.sleep(0.3)  # mid-partition
                origin = cluster.alive_nodes()[0]
                mid_partition = origin.broadcast("split")
                await asyncio.sleep(0.4)
                partitioned_count = cluster.delivery_count(mid_partition)
                assert partitioned_count < 6  # the cut blocked someone
                await chaos
                await asyncio.sleep(1.0)  # let rejoin + repair settle
                origin = cluster.alive_nodes()[0]
                healed = origin.broadcast("healed")
                count = await cluster.wait_for_delivery(healed, 6, timeout=8.0)
                assert count == 6
                applied = [d for _t, d in controller.applied]
                assert any("heal" in d for d in applied)
            finally:
                await cluster.stop()

        run(scenario())


class TestChurnLive:
    def test_crash_and_flash_restart_recovers(self):
        async def scenario():
            cluster = LocalCluster(5, config=CONFIG, base_seed=21)
            await cluster.start()
            try:
                plan = FaultPlan(
                    events=(
                        CrashEvent(at=0.0, fraction=0.4),
                        RestartEvent(at=0.6, fraction=1.0),
                    ),
                    label="live-churn",
                )
                controller = ChaosController(cluster, plan, seed=5)
                await controller.run()
                # Everyone is back (fresh processes on fresh ports).
                assert len(cluster.alive_nodes()) == 5
                assert await cluster.wait_for_views(minimum=1, timeout=8.0)
                # Recovery, not instant convergence: repair may still be
                # stitching views, so probe until a flood reaches everyone.
                count = 0
                for _attempt in range(5):
                    origin = cluster.alive_nodes()[0]
                    message_id = origin.broadcast("recovered")
                    count = await cluster.wait_for_delivery(
                        message_id, 5, timeout=4.0
                    )
                    if count == 5:
                        break
                    await asyncio.sleep(0.5)
                assert count == 5
            finally:
                await cluster.stop()

        run(scenario())


class TestSamePortRestart:
    def test_restart_on_same_port_exercises_stale_identity(self):
        """A crashed node's replacement binds the *same* address, so
        peers still holding the old NodeId in their views dial a fresh
        incarnation with none of the old protocol state — the path the
        simulator models via SimNode.reset but the live runtime never
        saw before reuse_port."""

        async def scenario():
            cluster = LocalCluster(4, config=CONFIG, base_seed=61)
            await cluster.start()
            try:
                victim = cluster.nodes[2]
                old_id = victim.node_id
                # Make sure somebody actually holds the victim in a view.
                assert any(
                    old_id in node.active_view()
                    for node in cluster.nodes
                    if node is not victim
                )
                await cluster.crash_node(2)
                await asyncio.sleep(0.2)
                reborn = await cluster.restart_node(2, reuse_port=True)
                # Same identity, fresh process: no delivered history, no
                # protocol state inherited from the predecessor.
                assert reborn.node_id == old_id
                assert reborn is not victim
                assert reborn.delivered == []
                # Old peers (stale views) plus the rejoin stitch the new
                # incarnation back in; a flood must reach all four nodes.
                assert await cluster.wait_for_views(minimum=1, timeout=8.0)
                count = 0
                for _attempt in range(5):
                    origin = cluster.alive_nodes()[0]
                    message_id = origin.broadcast("stale-identity")
                    count = await cluster.wait_for_delivery(
                        message_id, 4, timeout=4.0
                    )
                    if count == 4:
                        break
                    await asyncio.sleep(0.5)
                assert count == 4
            finally:
                await cluster.stop()

        run(scenario())

    def test_reuse_port_requires_a_previously_bound_node(self):
        cluster = LocalCluster(2, config=CONFIG)

        async def scenario():
            with pytest.raises(ConfigurationError, match="never bound"):
                await cluster.restart_node(0, reuse_port=True)

        run(scenario())


class TestAdversaryAndDegradeLive:
    def test_adversary_nodes_drop_shuffles_then_recover(self):
        async def scenario():
            cluster = LocalCluster(4, config=CONFIG, base_seed=31)
            await cluster.start()
            try:
                plan = FaultPlan(
                    events=(
                        AdversaryEvent(
                            at=0.0, fraction=0.5,
                            drop_types=("Shuffle", "ShuffleReply"),
                            until=0.5,
                        ),
                    ),
                    label="live-adversary",
                )
                controller = ChaosController(cluster, plan, seed=9)
                await controller.run()
                # Honesty restored on every node after `until`.
                assert all(
                    not node.drop_message_types for node in cluster.alive_nodes()
                )
                # Broadcast traffic still flows (GossipData is not dropped).
                message_id = await cluster.broadcast_and_settle(settle=0.5)
                assert cluster.delivery_count(message_id) == 4
            finally:
                await cluster.stop()

        run(scenario())

    def test_overlapping_adversary_windows_are_independent(self):
        """One window expiring must not end another still-open window
        early: going honest reverts only that event's victims/types."""

        async def scenario():
            cluster = LocalCluster(4, config=CONFIG, base_seed=51)
            await cluster.start()
            try:
                plan = FaultPlan(
                    events=(
                        AdversaryEvent(
                            at=0.0, fraction=1.0,
                            drop_types=("Shuffle",), until=0.3,
                        ),
                        AdversaryEvent(
                            at=0.1, fraction=1.0,
                            drop_types=("ForwardJoin",), until=0.9,
                        ),
                    ),
                    label="live-overlap",
                )
                controller = ChaosController(cluster, plan, seed=17)
                chaos = asyncio.create_task(controller.run())
                await asyncio.sleep(0.6)  # first window over, second open
                drops = [set(n.drop_message_types) for n in cluster.alive_nodes()]
                assert all("Shuffle" not in d for d in drops)
                assert any("ForwardJoin" in d for d in drops)
                await chaos
                assert all(
                    not node.drop_message_types for node in cluster.alive_nodes()
                )
            finally:
                await cluster.stop()

        run(scenario())

    def test_degraded_links_drop_frames(self):
        async def scenario():
            cluster = LocalCluster(3, config=CONFIG, base_seed=41)
            await cluster.start()
            try:
                plan = FaultPlan(
                    events=(DegradeEvent(at=0.0, until=0.6, loss_rate=0.9),),
                    label="live-degrade",
                )
                controller = ChaosController(cluster, plan, seed=13)
                chaos = asyncio.create_task(controller.run())
                await asyncio.sleep(0.1)
                for _ in range(5):
                    cluster.alive_nodes()[0].broadcast("lossy")
                    await asyncio.sleep(0.05)
                await chaos
                faulted = sum(
                    node.transport.frames_faulted for node in cluster.alive_nodes()
                )
                assert faulted > 0
            finally:
                await cluster.stop()

        run(scenario())
