"""Tests for Scamp and CyclonAcked baselines."""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario
from repro.protocols.scamp import ScampConfig


def scamp_scenario(n=150, cycles=10, seed=42):
    params = ExperimentParams.scaled(n, seed=seed, stabilization_cycles=cycles)
    scenario = Scenario("scamp", params)
    scenario.build_overlay()
    return scenario


class TestScampSubscription:
    def test_join_through_self_rejected(self, world):
        _, a = world.scamp()
        with pytest.raises(ConfigurationError):
            a.join(a.address)

    def test_subscriber_starts_with_contact_in_view(self, world):
        (_, a), (_, b) = world.scamp(), world.scamp()
        b.join(a.address)
        world.drain()
        assert a.address in b.partial_view

    def test_bootstrap_contact_keeps_first_subscriber(self, world):
        (_, a), (_, b) = world.scamp(), world.scamp()
        b.join(a.address)
        world.drain()
        assert b.address in a.partial_view
        assert a.address in b.in_view  # keeper notification arrived

    def test_subscription_spreads_beyond_contact(self):
        scenario = scamp_scenario(100)
        last = scenario.node_ids[-1]
        holders = sum(
            1
            for node_id in scenario.node_ids
            if last in scenario.membership(node_id).partial_view
        )
        assert holders >= 1

    def test_view_sizes_grow_logarithmically(self):
        """SCAMP's equilibrium is around (c+1) * log(n) entries."""
        import math

        scenario = scamp_scenario(200)
        sizes = [len(scenario.membership(n).partial_view) for n in scenario.node_ids]
        mean_size = sum(sizes) / len(sizes)
        expected = (scenario.params.scamp.c + 1) * math.log(200)
        assert 0.4 * expected < mean_size < 2.5 * expected

    def test_overlay_connected_after_joins(self):
        scenario = scamp_scenario(100)
        assert scenario.snapshot().largest_component_fraction() > 0.95

    def test_no_self_entries(self):
        scenario = scamp_scenario(100)
        for node_id in scenario.node_ids:
            protocol = scenario.membership(node_id)
            assert node_id not in protocol.partial_view
            assert node_id not in protocol.in_view


class TestScampMaintenance:
    def test_heartbeats_refresh_isolation_timer(self, world):
        (_, a), (_, b) = world.scamp(), world.scamp()
        b.join(a.address)
        world.drain()
        for _ in range(3):
            a.cycle()
            b.cycle()
            world.drain()
        # b receives a's heartbeats (a has b in partial view), so b's
        # isolation counter keeps resetting.
        assert b._cycles_since_heartbeat <= 1

    def test_isolated_node_resubscribes(self, world):
        config = ScampConfig(isolation_cycles=2)
        (_, a), (_, b) = world.scamp(config=config), world.scamp(config=config)
        b.join(a.address)
        world.drain()
        # a never runs cycles (no heartbeats to b); after the threshold b
        # resubscribes through its partial view.
        for _ in range(5):
            b.cycle()
            world.drain()
        assert b.resubscriptions >= 1

    def test_lease_forces_resubscription(self, world):
        config = ScampConfig(lease_cycles=3)
        (_, a), (_, b) = world.scamp(config=config), world.scamp(config=config)
        b.join(a.address)
        world.drain()
        for _ in range(4):
            a.cycle()
            b.cycle()
            world.drain()
        assert b.resubscriptions >= 1

    def test_unsubscribe_patches_views(self, world):
        protocols = [world.scamp()[1] for _ in range(6)]
        world.join_chain(protocols)
        leaver = protocols[1]
        holders = [p for p in protocols if leaver.address in p.partial_view]
        leaver.leave()
        world.drain()
        for holder in holders:
            assert leaver.address not in holder.partial_view
        assert leaver.partial_view == []

    def test_report_failure_removes_peer(self, world):
        (_, a), (_, b) = world.scamp(), world.scamp()
        b.join(a.address)
        world.drain()
        b.report_failure(a.address)
        assert a.address not in b.partial_view


class TestScampGossipTargets:
    def test_targets_subset_of_partial_view(self):
        scenario = scamp_scenario(80)
        node_id = scenario.node_ids[5]
        protocol = scenario.membership(node_id)
        targets = protocol.gossip_targets(4)
        assert len(targets) <= 4
        assert set(targets) <= set(protocol.partial_view)

    def test_exclusion_respected(self):
        scenario = scamp_scenario(80)
        node_id = scenario.node_ids[5]
        protocol = scenario.membership(node_id)
        view = protocol.partial_view
        if view:
            excluded = view[0]
            for _ in range(10):
                assert excluded not in protocol.gossip_targets(len(view), exclude=(excluded,))


class TestCyclonAcked:
    def test_failure_report_expunges_peer(self, world):
        (_, a), (_, b) = world.cyclon_acked(), world.cyclon_acked()
        b.join(a.address)
        world.drain()
        assert b.address in a.view
        a.report_failure(b.address)
        assert b.address not in a.view
        assert a.failures_detected == 1

    def test_failure_report_for_unknown_peer_is_noop(self, world):
        (_, a), (_, b) = world.cyclon_acked(), world.cyclon_acked()
        a.report_failure(b.address)
        assert a.failures_detected == 0

    def test_acked_gossip_cleans_views_on_dissemination(self):
        params = ExperimentParams.scaled(120, stabilization_cycles=10)
        scenario = Scenario("cyclon-acked", params)
        scenario.build_overlay()
        scenario.run_cycles(10)
        scenario.fail_fraction(0.4)
        scenario.send_broadcasts(20)
        alive = set(scenario.alive_ids())
        dead_refs = total_refs = 0
        for node_id in alive:
            for peer in scenario.membership(node_id).view.members():
                total_refs += 1
                if peer not in alive:
                    dead_refs += 1
        # Gossip-driven detection strictly reduces stale entries; the plain
        # Cyclon run below keeps nearly all of them.
        assert dead_refs / total_refs < 0.4

    def test_plain_cyclon_keeps_stale_entries(self):
        params = ExperimentParams.scaled(120, stabilization_cycles=10)
        scenario = Scenario("cyclon", params)
        scenario.build_overlay()
        scenario.run_cycles(10)
        scenario.fail_fraction(0.4)
        scenario.send_broadcasts(20)
        alive = set(scenario.alive_ids())
        dead_refs = total_refs = 0
        for node_id in alive:
            for peer in scenario.membership(node_id).view.members():
                total_refs += 1
                if peer not in alive:
                    dead_refs += 1
        assert dead_refs / total_refs > 0.25  # close to the 40% injected
