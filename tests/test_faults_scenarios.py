"""Registry integration of the ``faults_*`` scenario family.

Same contract as the other grid scenarios: cells merge to the monolithic
run exactly, and artifacts are byte-identical across worker counts, cell
splitting, and snapshot-cache settings.
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import get_scenario, scenario_ids
from repro.experiments.reporting import encode_artifact
from repro.experiments.runner import build_units, run_scenarios

FAULT_IDS = tuple(s for s in scenario_ids() if s.startswith("faults_"))
TINY = dict(n=32, messages=4)


def _artifact_bytes(runs) -> dict[str, str]:
    return {
        scenario_id: encode_artifact(run.artifact())
        for scenario_id, run in runs.items()
    }


class TestFamilyShape:
    def test_at_least_four_fault_scenarios_registered(self):
        assert len(FAULT_IDS) >= 4
        expected = {
            "faults_partition_heal",
            "faults_cascade",
            "faults_wan_jitter",
            "faults_churn_trace",
            "faults_flash_crowd",
            "faults_adversary",
        }
        assert expected.issubset(set(FAULT_IDS))

    def test_every_fault_scenario_has_cells_per_protocol(self):
        for scenario_id in FAULT_IDS:
            spec = get_scenario(scenario_id)
            assert spec.supports_cells, scenario_id
            assert spec.group == "faults"
            units = build_units([scenario_id], "smoke", **TINY)
            assert len(units) >= 2, scenario_id  # one cell per protocol
            assert all(unit.cell is not None for unit in units)

    @pytest.mark.parametrize("scenario_id", sorted(FAULT_IDS))
    def test_merge_reproduces_monolithic_run(self, scenario_id):
        spec = get_scenario(scenario_id)
        units = build_units([scenario_id], "smoke", **TINY)
        _, context = units[0].resolve()
        cell_results = {
            unit.cell: spec.run_cell(unit.resolve()[1], unit.cell) for unit in units
        }
        merged = spec.merge_cells(context, cell_results)
        assert merged == spec.run(context)

    def test_wan_jitter_runs_quantised_engine(self):
        spec = get_scenario("faults_wan_jitter")
        assert spec.tier("smoke").extra["engine_tick"] == 0.002


class TestFaultDeterminismMatrix:
    """workers x cells x cache: byte-identical artifacts, like the
    existing mode-matrix tests for the figure scenarios."""

    def test_partition_and_wan_across_modes(self):
        ids = ["faults_partition_heal", "faults_wan_jitter"]
        reference = run_scenarios(ids, "smoke", workers=1, cells=False,
                                  snapshot_cache=False, **TINY)
        for workers, cells, cache in [(1, True, True), (3, True, True), (2, True, False)]:
            candidate = run_scenarios(ids, "smoke", workers=workers, cells=cells,
                                      snapshot_cache=cache, **TINY)
            assert _artifact_bytes(candidate) == _artifact_bytes(reference), (
                workers, cells, cache,
            )

    def test_churn_and_flash_across_modes(self):
        ids = ["faults_churn_trace", "faults_flash_crowd"]
        reference = run_scenarios(ids, "smoke", workers=1, cells=False,
                                  snapshot_cache=False, **TINY)
        candidate = run_scenarios(ids, "smoke", workers=2, cells=True,
                                  snapshot_cache=True, **TINY)
        assert _artifact_bytes(candidate) == _artifact_bytes(reference)

    def test_replicates_reproducible_and_seed_sensitive(self):
        first = run_scenarios(["faults_cascade"], "smoke", workers=1, **TINY)
        again = run_scenarios(["faults_cascade"], "smoke", workers=1, **TINY)
        assert _artifact_bytes(first) == _artifact_bytes(again)
        other = run_scenarios(["faults_cascade"], "smoke", workers=1,
                              root_seed=7, **TINY)
        assert _artifact_bytes(other) != _artifact_bytes(first)


class TestFaultResults:
    def test_partition_heal_phases_cover_all_messages(self):
        runs = run_scenarios(["faults_partition_heal"], "smoke", workers=1, **TINY)
        result = runs["faults_partition_heal"].first_result()
        for cell in result.values():
            assert sum(row["messages"] for row in cell["phases"]) == cell["messages"]
            assert [row["phase"] for row in cell["phases"]] == [
                "before", "partitioned", "healed",
            ]

    def test_render_and_check_run_at_tiny_scale(self):
        runs = run_scenarios(list(FAULT_IDS), "smoke", workers=1, **TINY)
        for scenario_id, run in runs.items():
            assert run.render().strip(), scenario_id
            run.check()

    def test_flash_crowd_restores_population(self):
        runs = run_scenarios(["faults_flash_crowd"], "smoke", workers=1, **TINY)
        result = runs["faults_flash_crowd"].first_result()
        for cell in result.values():
            assert cell["final"]["alive"] == TINY["n"]

    def test_adversary_drops_repair_traffic(self):
        runs = run_scenarios(["faults_adversary"], "smoke", workers=1,
                             n=48, messages=6)
        result = runs["faults_adversary"].first_result()
        assert result["hyparview"]["fault_stats"]["dropped_adversary"] > 0
