"""Quantised-tick engine mode: bucket sharing with order preservation.

The ROADMAP open item: latency models with continuous jitter degenerate
the bucket queue to one event per bucket.  With ``tick`` set, timestamps
round *up* to the next tick multiple and events within a quantised bucket
fire stable-sorted by their raw timestamps — order preserved up to the
tick resolution, O(1) appends restored.  Off by default: every pinned
artifact uses exact timestamps.
"""

from __future__ import annotations

import pickle
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Engine


class TestQuantisedScheduling:
    def test_tick_validation(self):
        with pytest.raises(SimulationError, match="tick"):
            Engine(tick=0.0)
        with pytest.raises(SimulationError, match="tick"):
            Engine(tick=-0.5)
        assert Engine(tick=0.01).tick == 0.01
        assert Engine().tick is None

    def test_jittered_posts_share_buckets(self):
        engine = Engine(tick=0.01)
        rng = random.Random(3)
        for _ in range(500):
            engine.post(rng.uniform(0.0, 0.1), lambda: None)
        # Without quantisation these 500 posts open ~500 buckets; with a
        # 10 ms tick they collapse into at most 11 distinct timestamps.
        assert len(engine._buckets) <= 11

    def test_events_fire_sorted_by_raw_time_within_bucket(self):
        engine = Engine(tick=1.0)
        fired = []
        for raw in (0.7, 0.2, 0.9, 0.4):
            engine.post(raw, fired.append, raw)
        engine.run_until_idle()
        assert fired == [0.2, 0.4, 0.7, 0.9]

    def test_equal_raw_times_keep_insertion_order(self):
        engine = Engine(tick=1.0)
        fired = []
        for label in "abc":
            engine.post(0.5, fired.append, label)
        engine.post(0.2, fired.append, "first")
        engine.run_until_idle()
        assert fired == ["first", "a", "b", "c"]

    def test_quantisation_never_fires_early(self):
        engine = Engine(tick=0.01)
        seen = []
        engine.post(0.015, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [0.02]  # rounded up, not down
        assert engine.now == 0.02

    def test_timers_and_posts_interleave_by_raw_time(self):
        engine = Engine(tick=1.0)
        fired = []
        engine.schedule(0.6, fired.append, "timer")
        engine.post(0.3, fired.append, "post")
        engine.run_until_idle()
        assert fired == ["post", "timer"]

    def test_cancelled_timer_skipped(self):
        engine = Engine(tick=1.0)
        fired = []
        handle = engine.schedule(0.4, fired.append, "cancelled")
        engine.schedule(0.6, fired.append, "live")
        handle.cancel()
        engine.run_until_idle()
        assert fired == ["live"]
        assert engine.live_pending == 0

    def test_step_respects_raw_order(self):
        engine = Engine(tick=1.0)
        fired = []
        engine.post(0.9, fired.append, "late")
        engine.post(0.1, fired.append, "early")
        assert engine.step()
        assert fired == ["early"]
        assert engine.step()
        assert fired == ["early", "late"]
        assert not engine.step()

    def test_step_nested_post_at_same_instant(self):
        engine = Engine(tick=1.0)
        fired = []

        def outer():
            fired.append("outer")
            engine.post(0.0, fired.append, "nested")

        engine.post(0.5, outer)
        engine.post(0.6, fired.append, "later")
        while engine.step():
            pass
        assert fired == ["outer", "later", "nested"]

    def test_run_until_deadline_boundary(self):
        engine = Engine(tick=0.5)
        fired = []
        engine.post(0.3, fired.append, "a")  # quantised to 0.5
        engine.post(0.8, fired.append, "b")  # quantised to 1.0
        engine.run_until(0.5)
        assert fired == ["a"]
        engine.run_until(2.0)
        assert fired == ["a", "b"]

    def test_compact_preserves_raw_order(self):
        engine = Engine(tick=1.0)
        fired = []
        handles = [engine.schedule(0.1 * i, fired.append, i) for i in range(10)]
        for handle in handles[::2]:
            handle.cancel()
        engine.compact()
        engine.run_until_idle()
        assert fired == [1, 3, 5, 7, 9]

    def test_pickle_round_trip_preserves_quantised_queue(self):
        engine = Engine(tick=1.0)
        fired: list = []
        engine.post(0.7, fired.append, "late")
        engine.post(0.2, fired.append, "early")
        clone: Engine = pickle.loads(pickle.dumps(engine))
        assert clone.tick == 1.0
        # Raw-timestamp side tables survive the round trip, so the clone
        # still fires both entries (into its own copy of the list) at the
        # quantised instant.
        assert clone._raws == engine._raws
        assert clone.run_until_idle() == 2
        assert clone.now == 1.0
        assert fired == []  # the clone's callbacks target its own copy


class TestQuantisedEquivalence:
    """Quantised runs fire the same callbacks as exact runs, in raw-time
    order, whenever raw timestamps are already tick multiples."""

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=20), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    def test_tick_aligned_workload_matches_exact_engine(self, operations):
        exact, quantised = Engine(), Engine(tick=0.5)
        log_exact: list = []
        log_quantised: list = []
        for index, (slot, use_timer) in enumerate(operations):
            delay = slot * 0.5
            if use_timer:
                exact.schedule(delay, log_exact.append, index)
                quantised.schedule(delay, log_quantised.append, index)
            else:
                exact.post(delay, log_exact.append, index)
                quantised.post(delay, log_quantised.append, index)
        exact.run_until_idle()
        quantised.run_until_idle()
        assert log_exact == log_quantised
