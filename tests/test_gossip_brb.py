"""Byzantine reliable broadcast: quorum unit behaviour + ``byz_*`` family.

Unit half: Bracha threshold geometry, echo-once under an equivocating
origin, quorum delivery on a clean network, sampled-mode determinism,
and the acked phase transport.  Registry half: the ``byz_*`` scenarios
obey the cells/determinism contract, and the adversary-fraction sweep
shows the designed cliff — BRB holds validated delivery to 30% mutating
relays and stalls past ``n > 3f`` while the ack/retransmit baseline
degrades smoothly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.experiments.params import ExperimentParams
from repro.experiments.registry import get_scenario, scenario_ids
from repro.experiments.reporting import encode_artifact
from repro.experiments.runner import build_units, run_scenarios
from repro.experiments.scenario import Scenario
from repro.gossip.byzantine import BRBConfig, BRBGossip, payload_digest
from repro.gossip.messages import BRBSend

BYZ_IDS = tuple(s for s in scenario_ids() if s.startswith("byz_"))
TINY = dict(n=32, messages=4)


def _scenario(protocol: str = "hyparview-brb", n: int = 16, **brb_kwargs) -> Scenario:
    params = ExperimentParams.scaled(n, stabilization_cycles=10)
    if brb_kwargs:
        params = replace(params, brb=BRBConfig(**brb_kwargs))
    scenario = Scenario(protocol, params)
    scenario.build_overlay()
    scenario.stabilize()
    return scenario


class TestBRBConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="mode"):
            BRBConfig(mode="paxos")
        with pytest.raises(ConfigurationError, match="fault fraction"):
            BRBConfig(fault_fraction=0.5)
        with pytest.raises(ConfigurationError, match="sample size"):
            BRBConfig(mode="sampled", sample_size=0)

    def test_roster_required(self):
        scenario = _scenario(n=8)
        layer = scenario.broadcast_layer(scenario.node_ids[0])
        fresh = BRBGossip(layer._host, layer._membership)
        with pytest.raises(ProtocolError, match="roster"):
            fresh.broadcast(None)
        with pytest.raises(ProtocolError, match="roster"):
            fresh.thresholds()


class TestQuorumGeometry:
    def test_bracha_thresholds(self):
        scenario = _scenario(n=16)
        layer = scenario.broadcast_layer(scenario.node_ids[0])
        # n=16, f = floor(16 * 0.25) = 4: echo ceil(21/2)=11, amplify 5,
        # deliver 9.
        assert layer.group_size() == 16
        assert layer.thresholds() == (11, 5, 9)
        # Re-rostering re-derives the geometry.
        layer.set_roster(scenario.node_ids[:10])
        assert layer.thresholds() == (7, 3, 5)  # f = 2

    def test_sampled_group_is_logarithmic(self):
        scenario = _scenario(n=64, mode="sampled")
        layer = scenario.broadcast_layer(scenario.node_ids[0])
        # ceil(3 * log2 64) = 18 << 64.
        assert layer.group_size() == 18
        assert layer.thresholds() == (12, 5, 9)  # f = floor(18 * 0.25) = 4

    def test_sampled_samples_are_static_and_deterministic(self):
        samples = []
        for _ in range(2):
            params = ExperimentParams.scaled(24, seed=11, stabilization_cycles=5)
            params = replace(params, brb=BRBConfig(mode="sampled"))
            scenario = Scenario("hyparview-brb", params)
            scenario.build_overlay()
            scenario.stabilize()
            layer = scenario.broadcast_layer(scenario.node_ids[3])
            first = layer._echo_targets()
            assert layer._echo_targets() == first  # static once drawn
            samples.append((first, layer._ready_targets()))
        assert samples[0] == samples[1]


class TestBRBDelivery:
    def test_clean_network_delivers_via_quorum_everywhere(self):
        scenario = _scenario(n=16)
        summary = scenario.send_broadcast()
        assert summary.reliability == 1.0
        totals = {"acks_received": 0, "retransmissions": 0, "give_ups": 0}
        quorum_deliveries = 0
        for node_id in scenario.node_ids:
            layer = scenario.broadcast_layer(node_id)
            for key, value in layer.reliability_stats().items():
                totals[key] += value
            quorum_deliveries += layer.brb_stats()["quorum_deliveries"]
            assert layer.pending_retransmits == 0
            # Every node echoed exactly once for the single broadcast.
            assert layer.brb_stats()["echoes_sent"] == 1
        assert quorum_deliveries == 16  # the origin included
        assert totals["acks_received"] > 0
        assert totals["retransmissions"] == 0
        assert totals["give_ups"] == 0

    def test_origin_delivers_through_quorum_not_on_send(self):
        scenario = _scenario(n=16)
        origin = scenario.node_ids[0]
        layer = scenario.broadcast_layer(origin)
        message_id = layer.broadcast(("v", 1))
        # No deliver-on-send: the origin's delivery certifies a quorum.
        assert not layer.has_delivered(message_id)
        scenario.drain()
        assert layer.has_delivered(message_id)

    def test_equivocating_origin_splits_votes_and_nothing_delivers(self):
        scenario = _scenario(n=16)
        origin = scenario.node_ids[0]
        layer = scenario.broadcast_layer(origin)
        message_id = layer._sequence.next_id()
        # The origin lies: half the roster gets value "a", half gets "b".
        # Echo quorum is 11 of 16 — an 8/8 split can never reach it.
        for index, peer in enumerate(scenario.node_ids[1:]):
            value = ("a",) if index % 2 == 0 else ("b",)
            scenario.network.send(origin, peer, BRBSend(message_id, value, origin))
        scenario.drain()
        for node_id in scenario.node_ids[1:]:
            node_layer = scenario.broadcast_layer(node_id)
            assert not node_layer.has_delivered(message_id)
            # Echo-once: the first value won, the second was ignored.
            state = node_layer._states[message_id]
            assert state.echoed in (payload_digest(("a",)), payload_digest(("b",)))

    def test_digest_is_stable_and_payload_sensitive(self):
        assert payload_digest(("m", 1)) == payload_digest(("m", 1))
        assert payload_digest(("m", 1)) != payload_digest(("m", 2))
        assert len(payload_digest(None)) == 16


class TestByzantineScenarioFamily:
    def test_family_registered_with_cells(self):
        assert set(BYZ_IDS) == {
            "byz_adversary_fraction", "byz_churn", "byz_equivocation",
        }
        for scenario_id in BYZ_IDS:
            spec = get_scenario(scenario_id)
            assert spec.supports_cells, scenario_id
            assert spec.group == "byzantine"
            assert set(spec.tiers) == {"smoke", "paper", "full"}
            units = build_units([scenario_id], "smoke", **TINY)
            assert len(units) >= 2
            assert all(unit.cell is not None for unit in units)
        # The sweep shards into (protocol, fraction) cells.
        sweep_units = build_units(["byz_adversary_fraction"], "smoke", **TINY)
        assert len(sweep_units) == 10

    def test_merge_reproduces_monolithic_run(self):
        spec = get_scenario("byz_equivocation")
        units = build_units(["byz_equivocation"], "smoke", **TINY)
        _, context = units[0].resolve()
        cell_results = {
            unit.cell: spec.run_cell(unit.resolve()[1], unit.cell) for unit in units
        }
        merged = spec.merge_cells(context, cell_results)
        assert merged == spec.run(context)

    def test_mode_matrix_determinism(self):
        ids = ["byz_equivocation"]

        def _bytes(runs):
            return {sid: encode_artifact(run.artifact()) for sid, run in runs.items()}

        reference = run_scenarios(ids, "smoke", workers=1, cells=False,
                                  snapshot_cache=False, **TINY)
        for workers, cells, cache in [(1, True, True), (3, True, True), (2, True, False)]:
            candidate = run_scenarios(ids, "smoke", workers=workers, cells=cells,
                                      snapshot_cache=cache, **TINY)
            assert _bytes(candidate) == _bytes(reference), (workers, cells, cache)

    def test_equivocation_separates_brb_from_baseline(self):
        runs = run_scenarios(["byz_equivocation"], "smoke", workers=1, **TINY)
        result = runs["byz_equivocation"].first_result()
        brb = result["hyparview-brb"]
        baseline = result["hyparview-reliable"]
        # BRB: exact agreement, no wrong value ever delivered, quorum
        # machinery visibly engaged.
        assert brb["wrong_deliveries"] == 0
        assert brb["agreement"] == 1.0
        assert brb["brb"]["quorum_deliveries"] > 0
        # Baseline: per-destination forgeries land as deliveries.
        assert baseline["wrong_deliveries"] > 0
        assert baseline["agreement"] < 1.0
        assert baseline["validated_average"] < 1.0
