"""The declarative stack registry: one construction path for sim and live.

``PROTOCOL_NAMES`` must be *derived* from the registry (registration order
is the canonical protocol order), every named stack must build a working
(membership, broadcast) pair over sans-io hosts, and the runtime subset
must contain exactly the stacks the asyncio runtime accepts.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.protocol import HyParView
from repro.experiments.params import PROTOCOL_NAMES, ExperimentParams
from repro.gossip.flood import FloodBroadcast
from repro.gossip.plumtree import Plumtree
from repro.gossip.reliable import ReliableGossip
from repro.protocols import registry
from repro.protocols.registry import (
    StackSpec,
    get_stack,
    register_stack,
    runtime_stack_names,
    stack_names,
)
from repro.testing import World


class TestRegistryNames:
    def test_canonical_order_drives_protocol_names(self):
        assert PROTOCOL_NAMES == stack_names()
        assert stack_names()[0] == "hyparview"

    def test_runtime_subset(self):
        names = runtime_stack_names()
        assert set(names) <= set(stack_names())
        for name in ("hyparview", "plumtree", "hyparview-reliable"):
            assert name in names
        # Datagram-style stacks stay sim-only.
        assert "cyclon" not in names

    def test_unknown_stack_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="hyparview"):
            get_stack("no-such-stack")

    def test_duplicate_registration_rejected(self):
        spec = get_stack("hyparview")
        with pytest.raises(ConfigurationError, match="duplicate"):
            register_stack(spec)

    def test_late_registration_is_visible(self):
        spec = StackSpec(
            name="test-only-stack",
            membership=lambda host, params: HyParView(host, params.hyparview),
            broadcast=lambda host, membership, params, tracker, on_deliver: (
                FloodBroadcast(host, membership, tracker, on_deliver=on_deliver)
            ),
        )
        register_stack(spec)
        try:
            assert get_stack("test-only-stack") is spec
            assert stack_names()[-1] == "test-only-stack"
            assert "test-only-stack" not in runtime_stack_names()
        finally:
            registry._REGISTRY.pop("test-only-stack")


class TestStackConstruction:
    def test_every_registered_stack_builds(self):
        params = ExperimentParams.scaled(16, seed=3)
        for name in stack_names():
            world = World()
            node = world.new_node()
            membership, broadcast = get_stack(name).build(
                node.host("membership"),
                node.host("gossip"),
                params,
                world.tracker,
                roster=[node.node_id],
            )
            assert membership.handlers()
            assert broadcast.handlers()

    def test_roster_stack_refuses_to_build_without_roster(self):
        params = ExperimentParams.scaled(16, seed=3)
        world = World()
        node = world.new_node()
        spec = get_stack("hyparview-brb")
        assert spec.needs_roster
        with pytest.raises(ConfigurationError, match="needs the full membership roster"):
            spec.build(
                node.host("membership"), node.host("gossip"), params, world.tracker
            )

    def test_expected_layer_types(self):
        params = ExperimentParams.scaled(16, seed=3)
        expectations = {
            "hyparview": (HyParView, FloodBroadcast),
            "plumtree": (HyParView, Plumtree),
            "hyparview-reliable": (HyParView, ReliableGossip),
        }
        for name, (membership_type, broadcast_type) in expectations.items():
            world = World()
            node = world.new_node()
            membership, broadcast = get_stack(name).build(
                node.host("membership"), node.host("gossip"), params, world.tracker
            )
            assert isinstance(membership, membership_type)
            assert isinstance(broadcast, broadcast_type)

    def test_on_deliver_reaches_broadcast_layer(self):
        params = ExperimentParams.scaled(16, seed=3)
        world = World()
        node = world.new_node()
        delivered = []
        membership, broadcast = get_stack("hyparview").build(
            node.host("membership"),
            node.host("gossip"),
            params,
            world.tracker,
            on_deliver=lambda mid, payload: delivered.append(payload),
        )
        node.wire("membership", membership)
        node.wire("gossip", broadcast)
        broadcast.broadcast("hello")
        assert delivered == ["hello"]
