"""Unit and property tests of the X-BOT optimisation swap (repro.protocols.xbot).

The crafted tests wire the four swap roles by hand — initiator ``i``,
candidate ``c``, old ``o`` and disconnected ``d``, each padded with an
unbiased slot-0 neighbour — and drive one round against a dict-backed
cost oracle, so every branch of the 6-leg exchange (commit, aggregate
rejection, direct accept, timeout, stale replies) is pinned
deterministically.

The hypothesis fuzz then interleaves optimisation rounds with joins,
crashes, graceful leaves and request-frame loss and checks the global
invariants at quiescence:

* everything plain HyParView guarantees (symmetry, capacity, disjoint
  views — see test_protocol_fuzz.py);
* no swap exchange is left open once the network and all timers drain;
* the unbiased floor: an optimisation removal never touches a node's
  protected slot-0 member (asserted inside the commit primitive itself,
  so any schedule that violated it would fail loudly).

Loss is injected only on the *request* legs (Optimization / Replace /
Switch): every commit in the chain happens in a request handler and is
confirmed by a reply the requester never drops, so request loss can only
abort rounds, never de-synchronise views — which is exactly the property
the fuzz pins down.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.ids import NodeId
from repro.core.config import HyParViewConfig
from repro.protocols.xbot import (
    ConstantCostOracle,
    CostOracle,
    LatencyCostOracle,
    OptimizationReply,
    XBot,
    XBotConfig,
)
from repro.sim.latency import ZonedLatency
from repro.testing import World

CONFIG = HyParViewConfig(
    active_view_capacity=2,
    passive_view_capacity=8,
    arwl=3,
    prwl=2,
    shuffle_ka=1,
    shuffle_kp=2,
    promotion_retry_delay=0.2,
    promotion_max_passes=5,
)


class MapOracle(CostOracle):
    """Symmetric cost table keyed by unordered host-name pairs."""

    __slots__ = ("table", "default")

    def __init__(self, table: dict[tuple[str, str], float], default: float = 5.0) -> None:
        self.table = {frozenset(pair): cost for pair, cost in table.items()}
        self.default = default

    def cost(self, a: NodeId, b: NodeId) -> float:
        return self.table.get(frozenset((a.host, b.host)), self.default)


def link(pa: XBot, pb: XBot) -> None:
    """Install a symmetric active edge directly (insertion order is slot
    order, so the first link a node gets lands in its unbiased slot 0)."""
    pa.active.add(pb.address)
    pa._host.watch(pb.address, pa._on_link_down)
    pb.active.add(pa.address)
    pb._host.watch(pa.address, pb._on_link_down)


def quad_world(oracle: CostOracle, *, with_d: bool = True):
    """The four swap roles, each shielded by an unbiased filler neighbour.

    ``i``: active [ui, o], passive [c] — a full view whose only swappable
    edge is the expensive ``i–o`` one.  ``c``: active [uc, d] (or empty
    when ``with_d`` is off, exercising the direct-accept path).
    """
    world = World(seed=11)
    cfg = XBotConfig(candidates_per_round=1)
    names = ("i", "c", "o", "d", "ui", "uc", "uo", "ud")
    built = {name: world.xbot(name, CONFIG, oracle=oracle, xbot=cfg) for name in names}
    protos = {name: proto for name, (_, proto) in built.items()}
    nodes = {name: node for name, (node, _) in built.items()}
    link(protos["i"], protos["ui"])
    link(protos["o"], protos["uo"])
    link(protos["i"], protos["o"])
    if with_d:
        link(protos["c"], protos["uc"])
        link(protos["d"], protos["ud"])
        link(protos["c"], protos["d"])
    protos["i"].passive.add(protos["c"].address)
    return world, nodes, protos


def active_sets(protos) -> dict[str, set[NodeId]]:
    return {name: set(proto.active_members()) for name, proto in protos.items()}


def total_cost(protos, oracle: CostOracle) -> float:
    edges = set()
    for proto in protos.values():
        for peer in proto.active_members():
            edges.add(frozenset((proto.address, peer)))
    return sum(oracle.cost(*sorted(edge, key=str)) for edge in edges)


class TestSwapCommit:
    ORACLE = MapOracle(
        {("i", "o"): 10.0, ("i", "c"): 1.0, ("c", "d"): 10.0, ("d", "o"): 1.0}
    )

    def test_four_node_swap_rewires_both_edges(self):
        world, _, protos = quad_world(self.ORACLE)
        before = total_cost(protos, self.ORACLE)
        protos["i"].optimize_once()
        world.drain()
        views = active_sets(protos)
        assert views["i"] == {protos["ui"].address, protos["c"].address}
        assert views["c"] == {protos["uc"].address, protos["i"].address}
        assert views["o"] == {protos["uo"].address, protos["d"].address}
        assert views["d"] == {protos["ud"].address, protos["o"].address}
        assert total_cost(protos, self.ORACLE) < before
        stats = protos["i"].xbot_stats
        assert stats.rounds_initiated == 1
        assert stats.swaps_completed == 1
        # o demotes i on the Switch leg, d demotes c on the SwitchReply leg;
        # i and c mirror those removals through the reserved-Disconnect path.
        assert protos["o"].xbot_stats.optimization_removals == 1
        assert protos["d"].xbot_stats.optimization_removals == 1
        for proto in protos.values():
            assert proto.xbot_stats.swap_timeouts == 0
            assert proto.xbot_stats.unbiased_protected == 0
            assert proto.xbot_stats.edges_declined == 0

    def test_swap_demotes_old_edges_to_passive(self):
        world, _, protos = quad_world(self.ORACLE)
        protos["i"].optimize_once()
        world.drain()
        assert protos["o"].address in protos["i"].passive_members()
        assert protos["i"].address in protos["o"].passive_members()

    def test_views_stay_symmetric_after_swap(self):
        world, _, protos = quad_world(self.ORACLE)
        protos["i"].optimize_once()
        world.drain()
        for proto in protos.values():
            for peer in proto.active_members():
                owner = next(p for p in protos.values() if p.address == peer)
                assert proto.address in owner.active_members()

    def test_direct_accept_when_candidate_has_room(self):
        world, _, protos = quad_world(self.ORACLE, with_d=False)
        protos["i"].optimize_once()
        world.drain()
        assert protos["c"].address in protos["i"].active_members()
        assert protos["i"].address in protos["c"].active_members()
        assert protos["o"].address not in protos["i"].active_members()
        assert protos["i"].xbot_stats.swaps_completed == 1
        # No fourth node was needed: nobody saw a Replace or Switch.
        assert protos["d"].xbot_stats.optimization_removals == 0


class TestSwapRejection:
    def test_aggregate_cost_rule_rejects_at_d(self):
        # i sees a local gain (1 < 10) but the swap would hand d a worse
        # edge than it gives up (15 > 1), so the aggregate rule refuses.
        oracle = MapOracle(
            {("i", "o"): 10.0, ("i", "c"): 1.0, ("c", "d"): 1.0, ("d", "o"): 15.0}
        )
        world, _, protos = quad_world(oracle)
        before = active_sets(protos)
        protos["i"].optimize_once()
        world.drain()
        assert active_sets(protos) == before
        assert protos["i"].xbot_stats.rounds_initiated == 1
        assert protos["i"].xbot_stats.swaps_rejected == 1
        assert protos["i"].xbot_stats.swaps_completed == 0

    def test_constant_oracle_never_initiates(self):
        world, _, protos = quad_world(ConstantCostOracle())
        before = active_sets(protos)
        for proto in protos.values():
            proto.optimize_once()
        world.drain()
        assert active_sets(protos) == before
        assert all(p.xbot_stats.rounds_initiated == 0 for p in protos.values())

    def test_no_round_without_strict_min_gain(self):
        # Improvement of exactly min_gain is not strict — no round opens.
        oracle = MapOracle({("i", "o"): 10.0, ("i", "c"): 8.0})
        world, _, protos = quad_world(oracle)
        protos["i"].xbot_config = XBotConfig(candidates_per_round=1, min_gain=2.0)
        protos["i"].optimize_once()
        world.drain()
        assert protos["i"].xbot_stats.rounds_initiated == 0


class TestUnbiasedSlots:
    def test_demote_refuses_unbiased_member(self):
        _, _, protos = quad_world(TestSwapCommit.ORACLE)
        ui = protos["ui"].address
        assert protos["i"].unbiased_members() == (ui,)
        assert not protos["i"]._demote_for_swap(ui, notify_peer=False)
        assert protos["i"].xbot_stats.unbiased_protected == 1
        assert ui in protos["i"].active_members()

    def test_optimizer_skips_expensive_unbiased_edge(self):
        # The i-ui edge is the costliest in the overlay, but it sits in the
        # unbiased slot: the round must target o instead and leave ui alone.
        oracle = MapOracle(
            {
                ("i", "ui"): 100.0,
                ("i", "o"): 10.0,
                ("i", "c"): 1.0,
                ("c", "d"): 10.0,
                ("d", "o"): 1.0,
            }
        )
        world, _, protos = quad_world(oracle)
        protos["i"].optimize_once()
        world.drain()
        assert protos["i"].xbot_stats.swaps_completed == 1
        assert protos["i"].unbiased_members() == (protos["ui"].address,)
        assert protos["o"].address not in protos["i"].active_members()


class TestTimeoutsAndStaleReplies:
    def test_initiator_timeout_on_dead_candidate(self):
        world, nodes, protos = quad_world(TestSwapCommit.ORACLE)
        before = active_sets(protos)["i"]
        world.network.fail(nodes["c"].node_id)
        protos["i"].optimize_once()
        world.drain()  # runs the swap timer; the Optimization was dropped
        assert protos["i"].xbot_stats.rounds_initiated == 1
        assert protos["i"].xbot_stats.swap_timeouts == 1
        assert protos["i"].xbot_stats.swaps_completed == 0
        assert protos["i"]._opt_pending is None
        assert active_sets(protos)["i"] == before

    def test_stale_optimization_reply_is_ignored(self):
        world, _, protos = quad_world(TestSwapCommit.ORACLE)
        before = active_sets(protos)
        reply = OptimizationReply(
            candidate=protos["c"].address, old=protos["o"].address, accepted=True
        )
        protos["i"].handle_optimization_reply(reply)
        world.drain()
        assert active_sets(protos) == before
        assert protos["i"].xbot_stats.swaps_completed == 0


class TestConfigAndOracles:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"unbiased_slots": -1},
            {"candidates_per_round": 0},
            {"swap_timeout": 0.0},
            {"min_gain": -0.1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            XBotConfig(**kwargs)

    def test_latency_oracle_reads_jitter_free_base_delay(self):
        model = ZonedLatency(zones=4)
        oracle = LatencyCostOracle(model)
        a, b = NodeId("n0", 9000), NodeId("n7", 9000)
        assert oracle.cost(a, b) == model.base_delay(a, b)
        assert oracle.cost(a, b) == oracle.cost(b, a)
        assert oracle.cost(a, b) > 0.0


# ----------------------------------------------------------------------
# Property-based fuzz of the swap state machine
# ----------------------------------------------------------------------
class CheckedXBot(XBot):
    """XBot that fails loudly if a swap commit ever removes an unbiased
    member — turning the floor from a counter into a fuzz invariant."""

    def _demote_for_swap(self, peer, *, notify_peer):
        protected = self.unbiased_members()
        removed = super()._demote_for_swap(peer, notify_peer=notify_peer)
        assert not (removed and peer in protected), (
            f"optimisation removed unbiased member {peer}"
        )
        return removed


class HashCostOracle(CostOracle):
    """Deterministic symmetric pseudo-random costs from node identities."""

    __slots__ = ()

    def cost(self, a: NodeId, b: NodeId) -> float:
        if a == b:
            return 0.0
        lo, hi = sorted((f"{a.host}:{a.port}", f"{b.host}:{b.port}"))
        digest = hashlib.sha256(f"{lo}--{hi}".encode()).digest()
        return int.from_bytes(digest[:4], "big") / 2**32


FUZZ_CONFIG = HyParViewConfig(
    active_view_capacity=3,
    passive_view_capacity=6,
    arwl=3,
    prwl=2,
    shuffle_ka=2,
    shuffle_kp=2,
    promotion_retry_delay=0.2,
    promotion_max_passes=5,
)
FUZZ_XBOT = XBotConfig(unbiased_slots=1, candidates_per_round=2, swap_timeout=0.5)

#: Request legs only — every commit happens in a request handler and is
#: confirmed by a reply the requester never drops, so request loss aborts
#: rounds without ever de-synchronising views (see module docstring).
SWAP_REQUESTS = ("Optimization", "Replace", "Switch")

NODES = 8

operation = st.one_of(
    st.tuples(st.just("join"), st.integers(0, NODES - 1), st.integers(0, NODES - 1)),
    st.tuples(st.just("crash"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("leave"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("cycle"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("optimize"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("lossy"), st.integers(0, NODES - 1), st.just(0)),
    st.tuples(st.just("honest"), st.integers(0, NODES - 1), st.just(0)),
)


class XBotFuzzer:
    def __init__(self, seed: int) -> None:
        self.world = World(seed=seed)
        self.oracle = HashCostOracle()
        self.pairs = [
            self.world.xbot(
                config=FUZZ_CONFIG, oracle=self.oracle, xbot=FUZZ_XBOT, cls=CheckedXBot
            )
            for _ in range(NODES)
        ]
        self.nodes = [node for node, _ in self.pairs]
        self.protocols = [protocol for _, protocol in self.pairs]
        self.world.join_chain(self.protocols)

    def alive(self, index: int) -> bool:
        return self.nodes[index].alive

    def _alive_count(self) -> int:
        return sum(1 for node in self.nodes if node.alive)

    def apply(self, op: tuple) -> None:
        kind, a, b = op
        if kind == "join":
            if a != b and self.alive(a) and self.alive(b):
                self.protocols[a].join(self.protocols[b].address)
        elif kind == "crash":
            if self.alive(a) and self._alive_count() > 2:
                self.world.network.fail(self.nodes[a].node_id)
        elif kind == "leave":
            if self.alive(a) and self._alive_count() > 2:
                self.protocols[a].leave()
                self.world.drain()
                self.world.network.fail(self.nodes[a].node_id)
        elif kind == "cycle":
            if self.alive(a):
                self.protocols[a].cycle()  # shuffle + one optimisation round
        elif kind == "optimize":
            if self.alive(a):
                self.protocols[a].optimize_once()
        elif kind == "lossy":
            if self.alive(a):
                self.world.network.set_adversary(self.nodes[a].node_id, SWAP_REQUESTS)
        elif kind == "honest":
            if self.alive(a):
                self.world.network.set_adversary(self.nodes[a].node_id, ())
        self.world.drain()

    def check_invariants(self) -> None:
        live = {
            node.node_id: protocol
            for node, protocol in zip(self.nodes, self.protocols)
            if node.alive
        }
        for node_id, protocol in live.items():
            active = set(protocol.active_members())
            passive = set(protocol.passive_members())
            assert node_id not in active, "node in own active view"
            assert node_id not in passive, "node in own passive view"
            assert not active & passive, "active and passive views overlap"
            assert len(active) <= FUZZ_CONFIG.active_view_capacity
            assert len(passive) <= FUZZ_CONFIG.passive_view_capacity
            # Quiescence resolves every exchange: each pending role holds a
            # live timer, and drain() runs timers to completion.
            assert protocol._opt_pending is None, "initiator round left open"
            assert protocol._replace_pending is None, "candidate round left open"
            assert protocol._switch_pending is None, "disconnected round left open"
            assert set(protocol.unbiased_members()) <= active
        for node_id, protocol in live.items():
            for peer in protocol.active_members():
                if peer in live:
                    assert node_id in live[peer].active_members(), (
                        f"asymmetric link {node_id} -> {peer}"
                    )


class TestXBotFuzz:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(operation, max_size=25),
    )
    def test_invariants_hold_under_any_event_sequence(self, seed, operations):
        fuzzer = XBotFuzzer(seed)
        for op in operations:
            fuzzer.apply(op)
        fuzzer.check_invariants()

    def test_fuzzer_bootstrap_is_sane(self):
        fuzzer = XBotFuzzer(7)
        fuzzer.check_invariants()
        assert all(len(p.active_members()) >= 1 for p in fuzzer.protocols)

    def test_optimisation_pressure_lowers_cost_on_static_overlay(self):
        """With no churn, repeated rounds must strictly reduce the summed
        active-edge cost (the paper's convergence argument) and never
        disturb symmetry."""
        fuzzer = XBotFuzzer(13)

        def summed_cost() -> float:
            edges = set()
            for proto in fuzzer.protocols:
                for peer in proto.active_members():
                    edges.add(frozenset((proto.address, peer)))
            return sum(
                fuzzer.oracle.cost(*sorted(edge, key=str))
                for edge in edges
                if len(edge) == 2
            )

        before = summed_cost()
        for _ in range(10):
            for proto in fuzzer.protocols:
                proto.optimize_once()
            fuzzer.world.drain()
        completed = sum(p.xbot_stats.swaps_completed for p in fuzzer.protocols)
        assert completed > 0, "no swap completed on a static random overlay"
        assert summed_cost() < before
        fuzzer.check_invariants()
