"""Tests for continuous churn and node revival."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.experiments.churn import run_churn_experiment
from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario


def small_scenario(protocol="hyparview", n=80, cycles=8):
    params = ExperimentParams.scaled(n, stabilization_cycles=cycles)
    scenario = Scenario(protocol, params)
    scenario.build_overlay()
    scenario.run_cycles(cycles)
    return scenario


class TestRevive:
    def test_revive_rejoins_overlay(self):
        scenario = small_scenario()
        victim = scenario.node_ids[10]
        scenario.fail_nodes([victim])
        scenario.send_paced_broadcasts(5)  # let repair purge the victim
        scenario.revive_node(victim)
        assert scenario.network.is_alive(victim)
        membership = scenario.membership(victim)
        assert len(membership.active) >= 1
        summary = scenario.send_broadcast(origin=victim)
        assert summary.reliability > 0.95

    def test_revive_requires_dead_node(self):
        scenario = small_scenario()
        with pytest.raises(SimulationError):
            scenario.revive_node(scenario.node_ids[0])

    def test_revived_node_has_fresh_state(self):
        scenario = small_scenario()
        victim = scenario.node_ids[5]
        old_membership = scenario.membership(victim)
        scenario.fail_nodes([victim])
        scenario.revive_node(victim)
        assert scenario.membership(victim) is not old_membership
        assert scenario.nodes[victim].generation == 1

    def test_generation_rng_streams_differ(self):
        scenario = small_scenario()
        node = scenario.nodes[scenario.node_ids[3]]
        first = node.host("membership").rng.random()
        node.reset()
        second = node.host("membership").rng.random()
        assert first != second

    def test_leave_gracefully_removes_node(self):
        scenario = small_scenario()
        leaver = scenario.node_ids[7]
        scenario.leave_gracefully(leaver)
        assert not scenario.network.is_alive(leaver)
        alive = set(scenario.alive_ids())
        holders = sum(
            1
            for node_id in alive
            if leaver in scenario.membership(node_id).active_members()
        )
        assert holders == 0  # DISCONNECTs landed before the crash


class TestChurnExperiment:
    def test_validation(self):
        params = ExperimentParams.scaled(60, stabilization_cycles=3)
        with pytest.raises(ConfigurationError):
            run_churn_experiment("hyparview", params, steps=0)
        with pytest.raises(ConfigurationError):
            run_churn_experiment(
                "hyparview", params, crash_weight=0, leave_weight=0, revive_weight=0
            )

    def test_hyparview_survives_churn(self):
        params = ExperimentParams.scaled(80, stabilization_cycles=8)
        result = run_churn_experiment("hyparview", params, steps=25)
        assert result.steps == 25
        assert result.crashes + result.leaves + result.revives <= 25
        assert result.average > 0.95
        assert result.final_largest_component > 0.95
        assert result.stale_active_entries <= 2

    def test_population_floor_respected(self):
        params = ExperimentParams.scaled(60, stabilization_cycles=5)
        result = run_churn_experiment(
            "hyparview",
            params,
            steps=40,
            crash_weight=1.0,
            leave_weight=0.0,
            revive_weight=0.0,
            min_alive_fraction=0.5,
        )
        assert result.final_alive >= 30

    def test_cyclon_acked_under_churn(self):
        params = ExperimentParams.scaled(80, stabilization_cycles=8)
        result = run_churn_experiment("cyclon-acked", params, steps=20)
        assert result.average > 0.7  # probabilistic gossip, lower bar


class TestPartitions:
    def test_partition_splits_delivery_then_heals(self):
        scenario = small_scenario(n=100, cycles=10)
        half = scenario.node_ids[:50]
        other = scenario.node_ids[50:]
        scenario.network.set_partitions([half, other])
        origin = half[0]
        # Messages stay within the partition; sends across the cut fail and
        # trigger repair, so the halves re-knit internally.
        for _ in range(5):
            summary = scenario.send_broadcast(origin=origin)
        delivered_fraction = summary.delivered / summary.population_size
        assert delivered_fraction <= 0.55  # at most its own half (+slack)
        # Heal: promotions from passive views reconnect the halves over
        # the following cycles.
        scenario.network.clear_partitions()
        scenario.run_cycles(3)
        healed = [s.reliability for s in scenario.send_broadcasts(5)]
        assert sum(healed) / len(healed) > 0.9
