"""The ack+retransmit gossip layer and its ``reliable_*`` scenarios.

Unit half: the retransmit state machine over a lossy simulated network —
arming, cancellation on ack, exponential backoff, give-up failure
reports, duplicate-ack handling.  Registry half: the ``reliable_*``
family obeys the same cells/determinism contract as every other grid
scenario (mode-matrix byte identity).
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.params import ExperimentParams
from repro.experiments.registry import get_scenario, scenario_ids
from repro.experiments.reporting import encode_artifact
from repro.experiments.runner import build_units, run_scenarios
from repro.experiments.scenario import Scenario
from repro.gossip.reliable import ReliableConfig, ReliableGossip

RELIABLE_IDS = tuple(s for s in scenario_ids() if s.startswith("reliable_"))
TINY = dict(n=32, messages=4)


def _scenario(protocol: str, n: int = 24, **reliable_kwargs) -> Scenario:
    params = ExperimentParams.scaled(n, stabilization_cycles=10)
    if reliable_kwargs:
        from dataclasses import replace

        params = replace(params, reliable=ReliableConfig(**reliable_kwargs))
    scenario = Scenario(protocol, params)
    scenario.build_overlay()
    scenario.stabilize()
    return scenario


class TestReliableLayerUnit:
    def test_validation(self):
        scenario = _scenario("hyparview-reliable", n=8)
        host_layer = scenario.broadcast_layer(scenario.node_ids[0])
        host = host_layer._host
        membership = host_layer.membership
        with pytest.raises(ConfigurationError):
            ReliableGossip(host, membership, fanout=-1)
        with pytest.raises(ConfigurationError):
            ReliableGossip(host, membership, ack_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ReliableGossip(host, membership, backoff=0.5)
        with pytest.raises(ConfigurationError):
            ReliableConfig(max_retries=-1)

    def test_clean_network_acks_everything_and_retransmits_nothing(self):
        scenario = _scenario("hyparview-reliable")
        summary = scenario.send_broadcast()
        assert summary.reliability == 1.0
        totals = {"acks_received": 0, "retransmissions": 0, "give_ups": 0}
        for node_id in scenario.node_ids:
            for key, value in scenario.broadcast_layer(node_id).reliability_stats().items():
                totals[key] += value
            assert scenario.broadcast_layer(node_id).pending_retransmits == 0
        assert totals["acks_received"] > 0
        assert totals["retransmissions"] == 0
        assert totals["give_ups"] == 0

    def test_datagram_loss_is_repaired_by_retransmission(self):
        params = ExperimentParams.scaled(24, stabilization_cycles=10)
        scenario = Scenario("hyparview-reliable", params, loss_rate=0.3)
        scenario.build_overlay()
        scenario.stabilize()
        summaries = scenario.send_broadcasts(5)
        retransmissions = sum(
            scenario.broadcast_layer(node_id).retransmissions
            for node_id in scenario.node_ids
        )
        assert retransmissions > 0
        # The stream stays near-atomic despite 30% datagram loss.
        assert sum(s.reliability for s in summaries) / len(summaries) > 0.95

    def test_give_up_reports_failure_to_membership(self):
        scenario = _scenario("hyparview-reliable", n=12, max_retries=1)
        origin = scenario.node_ids[0]
        # Crash one of the origin's neighbours without telling anyone:
        # the dead peer never acks, so the copy retries then gives up.
        victim = scenario.membership(origin).gossip_targets(0)[0]
        scenario.network.fail_many([victim])
        scenario.broadcast_layer(origin).broadcast(None)
        scenario.drain()
        layer = scenario.broadcast_layer(origin)
        assert layer.give_ups >= 1
        assert layer.pending_retransmits == 0
        # The failure report expunged the silent peer from the view.
        assert victim not in scenario.membership(origin).gossip_targets(0)

    def test_duplicate_copies_are_acked_but_delivered_once(self):
        scenario = _scenario("hyparview-reliable", n=12)
        origin = scenario.node_ids[0]
        target = scenario.membership(origin).gossip_targets(0)[0]
        layer = scenario.broadcast_layer(origin)
        message_id = layer.broadcast(None)
        scenario.drain()
        target_layer = scenario.broadcast_layer(target)
        delivered_before = target_layer.delivered_count
        duplicates_before = target_layer.duplicate_count
        # Replay the copy as a retransmission would.
        from repro.gossip.messages import GossipData

        scenario.network.send(origin, target, GossipData(message_id, None, 1, origin))
        scenario.drain()
        assert target_layer.delivered_count == delivered_before
        assert target_layer.duplicate_count == duplicates_before + 1

    def test_backoff_doubles_retransmit_delay(self):
        scenario = _scenario("hyparview-reliable", n=12, ack_timeout=0.1, backoff=2.0,
                             max_retries=2)
        origin = scenario.node_ids[0]
        victim = scenario.membership(origin).gossip_targets(0)[0]
        scenario.network.fail_many([victim])
        start = scenario.engine.now
        scenario.broadcast_layer(origin).broadcast(None)
        scenario.drain()
        # Give-up happens only after 0.1 + 0.2 + 0.4 seconds of silence.
        assert scenario.engine.now - start >= 0.1 + 0.2 + 0.4 - 1e-9


class TestReliableScenarioFamily:
    def test_family_registered_with_cells(self):
        assert set(RELIABLE_IDS) == {"reliable_loss", "reliable_churn", "reliable_stress"}
        for scenario_id in RELIABLE_IDS:
            spec = get_scenario(scenario_id)
            assert spec.supports_cells, scenario_id
            assert set(spec.tiers) == {"smoke", "paper", "full"}
            units = build_units([scenario_id], "smoke", **TINY)
            assert len(units) >= 2  # one cell per protocol
            assert all(unit.cell is not None for unit in units)

    @pytest.mark.parametrize("scenario_id", sorted(RELIABLE_IDS))
    def test_merge_reproduces_monolithic_run(self, scenario_id):
        spec = get_scenario(scenario_id)
        units = build_units([scenario_id], "smoke", **TINY)
        _, context = units[0].resolve()
        cell_results = {
            unit.cell: spec.run_cell(unit.resolve()[1], unit.cell) for unit in units
        }
        merged = spec.merge_cells(context, cell_results)
        assert merged == spec.run(context)

    def test_mode_matrix_determinism(self):
        ids = ["reliable_loss", "reliable_churn"]

        def _bytes(runs):
            return {sid: encode_artifact(run.artifact()) for sid, run in runs.items()}

        reference = run_scenarios(ids, "smoke", workers=1, cells=False,
                                  snapshot_cache=False, **TINY)
        for workers, cells, cache in [(1, True, True), (3, True, True), (2, True, False)]:
            candidate = run_scenarios(ids, "smoke", workers=workers, cells=cells,
                                      snapshot_cache=cache, **TINY)
            assert _bytes(candidate) == _bytes(reference), (workers, cells, cache)

    def test_results_carry_ack_layer_counters(self):
        runs = run_scenarios(["reliable_loss"], "smoke", workers=1, **TINY)
        result = runs["reliable_loss"].first_result()
        for cell in result.values():
            assert cell["reliable"]["acks_received"] > 0
