"""Fault-plan vocabulary, the sim driver, and the no-op guarantee.

The load-bearing contract: installing an **empty** fault plan (or none)
leaves a measurement byte-identical — no extra RNG draws, no extra
events, no behavioural drift.  Fault hooks on the network likewise cost
nothing until a rule or adversary is installed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.experiments.failures import stabilized_scenario
from repro.experiments.params import ExperimentParams
from repro.experiments.reporting import encode_artifact, json_safe
from repro.faults import (
    DEFAULT_MUTATION_TYPES,
    AdversaryEvent,
    CollusionEvent,
    CrashEvent,
    DegradeEvent,
    FaultPlan,
    MutationEvent,
    PartitionEvent,
    Phase,
    RestartEvent,
    SimFaultDriver,
    measure_fault_plan,
    validate_phases,
)
from repro.sim.network import ByzantineBehavior, LinkFaultRule


def _tiny_base(seed: int = 5, n: int = 24):
    params = ExperimentParams.scaled(n, seed=seed, stabilization_cycles=3)
    return stabilized_scenario("hyparview", params)


class TestPlanValidation:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            events=(CrashEvent(at=0.5, fraction=0.1), CrashEvent(at=0.1, count=1))
        )
        assert [event.at for event in plan.events] == [0.1, 0.5]

    def test_horizon_covers_windows(self):
        plan = FaultPlan(
            events=(
                DegradeEvent(at=0.1, until=0.9, loss_rate=0.1),
                CrashEvent(at=0.3, count=1),
            )
        )
        assert plan.horizon == 0.9

    def test_empty_plan_is_falsy_with_zero_horizon(self):
        assert not FaultPlan.empty()
        assert FaultPlan.empty().horizon == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            CrashEvent(at=-1.0, count=1)

    def test_fraction_and_count_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            CrashEvent(at=0.0, fraction=0.5, count=3)
        with pytest.raises(ConfigurationError, match="exactly one"):
            RestartEvent(at=0.0)

    def test_partition_validation(self):
        with pytest.raises(ConfigurationError, match="weights"):
            PartitionEvent(at=0.0, weights=(1.0,))
        with pytest.raises(ConfigurationError, match="heal_at"):
            PartitionEvent(at=0.5, heal_at=0.5)
        with pytest.raises(ConfigurationError, match="rejoin requires"):
            PartitionEvent(at=0.0, rejoin=2)

    def test_degrade_window_must_be_nonempty(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            DegradeEvent(at=0.5, until=0.5)

    def test_adversary_needs_types(self):
        with pytest.raises(ConfigurationError, match="message type"):
            AdversaryEvent(at=0.0, fraction=0.5, drop_types=())

    def test_churn_trace_constructor(self):
        plan = FaultPlan.churn_trace(
            [(0.1, "crash", 2), (0.2, "restart", 2)]
        )
        assert isinstance(plan.events[0], CrashEvent)
        assert isinstance(plan.events[1], RestartEvent)
        with pytest.raises(ConfigurationError, match="unknown churn-trace"):
            FaultPlan.churn_trace([(0.1, "explode", 1)])

    def test_describe_is_json_safe(self):
        plan = FaultPlan(
            events=(
                PartitionEvent(at=0.1, heal_at=0.5, rejoin=2),
                DegradeEvent(at=0.2, until=0.6, loss_rate=0.1, jitter=(0.0, 0.05)),
                AdversaryEvent(at=0.3, fraction=0.2),
            )
        )
        assert json_safe(plan.describe()) == plan.describe()

    def test_shared_split_and_pick_helpers(self):
        from repro.faults.plan import pick_count, split_weighted

        groups = split_weighted(list(range(10)), (0.5, 0.5))
        assert [len(g) for g in groups] == [5, 5]
        groups = split_weighted(list(range(10)), (0.7, 0.3))
        assert [len(g) for g in groups] == [7, 3]
        assert sum(split_weighted(list(range(7)), (1, 1, 1)), []) == list(range(7))
        assert pick_count(0.5, None, 10) == 5
        assert pick_count(None, 3, 10) == 3
        assert pick_count(None, 30, 10) == 10
        assert pick_count(1.0, None, 0) == 0

    def test_phase_validation(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            Phase("empty", 1.0, 1.0)
        with pytest.raises(ConfigurationError, match="overlap"):
            validate_phases([Phase("a", 0.0, 0.5), Phase("b", 0.4, 1.0)])
        ordered = validate_phases([Phase("b", 0.5, 1.0), Phase("a", 0.0, 0.5)])
        assert [phase.name for phase in ordered] == ["a", "b"]


class TestPlanPopulation:
    def test_min_population_counts_explicit_victims(self):
        plan = FaultPlan(
            events=(
                CrashEvent(at=0.1, count=4),
                PartitionEvent(at=0.2, weights=(1, 1, 1)),
                RestartEvent(at=0.3, fraction=1.0),  # scales, no floor
            )
        )
        assert plan.min_population == 4
        assert FaultPlan.empty().min_population == 0

    def test_partition_groups_raise_the_floor(self):
        plan = FaultPlan(events=(PartitionEvent(at=0.0, weights=(1, 1, 1, 1, 1)),))
        assert plan.min_population == 5

    def test_validate_for_names_offenders(self):
        plan = FaultPlan(
            events=(CrashEvent(at=0.1, count=9),), label="too-big"
        )
        plan.validate_for(9)  # exactly enough is fine
        with pytest.raises(ConfigurationError, match="too-big") as excinfo:
            plan.validate_for(3)
        assert "9 nodes" in str(excinfo.value)
        assert "crash 9" in str(excinfo.value)


class TestPlanSerialization:
    def test_from_dict_round_trip(self):
        plan = FaultPlan.from_dict(
            {
                "label": "file-plan",
                "events": [
                    {"kind": "partition", "at": 0.1, "weights": [0.5, 0.5],
                     "heal_at": 0.5, "rejoin": 2},
                    {"kind": "crash", "at": 0.6, "count": 2},
                    {"kind": "restart", "at": 0.8, "fraction": 1.0},
                    {"kind": "degrade", "at": 0.2, "until": 0.4,
                     "loss_rate": 0.1, "jitter": [0.0, 0.05]},
                    {"kind": "adversary", "at": 0.3, "count": 1,
                     "drop_types": ["Shuffle"], "until": 0.5},
                ],
            }
        )
        assert plan.label == "file-plan"
        assert len(plan.events) == 5
        assert plan.min_population == 2
        assert isinstance(plan.events[0], PartitionEvent)
        assert plan.events[0].weights == (0.5, 0.5)

    def test_from_dict_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            FaultPlan.from_dict(["not", "a", "plan"])
        with pytest.raises(ConfigurationError, match="kind"):
            FaultPlan.from_dict({"events": [{"at": 0.1}]})
        with pytest.raises(ConfigurationError, match="#0"):
            FaultPlan.from_dict({"events": [{"kind": "explode", "at": 0.1}]})
        with pytest.raises(ConfigurationError, match="#1"):
            FaultPlan.from_dict(
                {
                    "events": [
                        {"kind": "crash", "at": 0.1, "count": 1},
                        {"kind": "crash", "at": 0.1, "bogus_field": 3},
                    ]
                }
            )

    def test_plan_from_file(self, tmp_path):
        from repro.faults import plan_from_file

        path = tmp_path / "plan.json"
        path.write_text(
            '{"label": "disk", "events": [{"kind": "crash", "at": 1.0, "count": 1}]}'
        )
        plan = plan_from_file(path)
        assert plan.label == "disk"
        assert isinstance(plan.events[0], CrashEvent)

        with pytest.raises(ConfigurationError, match="cannot read"):
            plan_from_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            plan_from_file(bad)


class TestNoOpGuarantee:
    """No plan == empty plan, byte for byte."""

    def test_empty_plan_measurement_identical_to_no_driver(self):
        base = _tiny_base()
        frozen = base.freeze()

        plain = base.clone()
        summaries_plain = [
            s.reliability for s in plain.send_paced_broadcasts(4)
        ]

        faulted = plain.thaw(frozen)
        driver = SimFaultDriver(faulted, FaultPlan.empty())
        driver.install()
        summaries_faulted = [
            s.reliability for s in faulted.send_paced_broadcasts(4)
        ]
        assert summaries_plain == summaries_faulted
        assert plain.engine.processed == faulted.engine.processed
        assert plain.network.stats.snapshot() == faulted.network.stats.snapshot()

    def test_empty_plan_installs_nothing(self):
        scenario = _tiny_base()
        pending_before = scenario.engine.live_pending
        driver = SimFaultDriver(scenario, FaultPlan.empty())
        driver.install()
        assert scenario.engine.live_pending == pending_before
        assert driver._rng is None  # the fault stream is never even created

    def test_measure_with_empty_plan_matches_twice(self):
        frozen = _tiny_base().freeze()
        results = []
        for _ in range(2):
            scenario = _tiny_base().thaw(frozen)
            result = measure_fault_plan(
                scenario, FaultPlan.empty(), messages=3,
                phases=(Phase("all", 0.0, 1.0),),
            )
            results.append(encode_artifact(json_safe(result)))
        assert results[0] == results[1]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_fuzz_noop_plan_identity_across_seeds(self, seed):
        """Property form of the no-op guarantee: for any base seed the
        empty-plan run equals the plain run exactly."""
        params = ExperimentParams.scaled(16, seed=seed, stabilization_cycles=2)
        base = stabilized_scenario("hyparview", params)
        frozen = base.freeze()

        plain = base.thaw(frozen)
        faulted = base.thaw(frozen)
        SimFaultDriver(faulted, FaultPlan.empty()).install()
        assert [s.reliability for s in plain.send_paced_broadcasts(2)] == [
            s.reliability for s in faulted.send_paced_broadcasts(2)
        ]
        assert plain.engine.processed == faulted.engine.processed


class TestSimDriver:
    def test_double_install_rejected(self):
        scenario = _tiny_base()
        driver = SimFaultDriver(scenario, FaultPlan.empty())
        driver.install()
        with pytest.raises(ConfigurationError, match="already installed"):
            driver.install()

    def test_crash_event_kills_fraction(self):
        scenario = _tiny_base()
        plan = FaultPlan(events=(CrashEvent(at=0.1, fraction=0.5),))
        SimFaultDriver(scenario, plan).install()
        scenario.engine.run_until(scenario.engine.now + 0.2)
        assert len(scenario.alive_ids()) == 12

    def test_crash_never_kills_last_survivor(self):
        scenario = _tiny_base(n=4)
        plan = FaultPlan(events=(CrashEvent(at=0.1, fraction=1.0),))
        SimFaultDriver(scenario, plan).install()
        scenario.engine.run_until(scenario.engine.now + 0.2)
        assert len(scenario.alive_ids()) == 1

    def test_restart_revives_and_rejoins(self):
        scenario = _tiny_base()
        plan = FaultPlan(
            events=(
                CrashEvent(at=0.1, fraction=0.5),
                RestartEvent(at=0.3, fraction=1.0),
            )
        )
        SimFaultDriver(scenario, plan).install()
        scenario.engine.run_until(scenario.engine.now + 0.5)
        scenario.drain()
        assert len(scenario.alive_ids()) == 24
        # Rejoined nodes are wired into the overlay again.
        snapshot = scenario.snapshot()
        assert snapshot.largest_component_fraction() > 0.9

    def test_partition_and_heal_flow(self):
        scenario = _tiny_base()
        plan = FaultPlan(
            events=(PartitionEvent(at=0.1, heal_at=0.3, rejoin=2),)
        )
        driver = SimFaultDriver(scenario, plan)
        driver.install()
        engine = scenario.engine
        engine.run_until(engine.now + 0.2)
        sample = scenario.alive_ids()
        cross = [
            (a, b)
            for a in sample[:6]
            for b in sample[:6]
            if a != b and not scenario.network.reachable(a, b)
        ]
        assert cross  # the cut separates at least some sampled pairs
        engine.run_until(engine.now + 0.3)
        scenario.drain()
        assert all(
            scenario.network.reachable(a, b)
            for a in sample[:6]
            for b in sample[:6]
        )
        descriptions = [d for _t, d in driver.applied]
        assert any("heal" in d for d in descriptions)
        assert any("rejoin 2" in d for d in descriptions)

    def test_crashed_adversary_restarts_honest(self):
        """A restarted process is fresh: the old incarnation's adversary
        registration must not survive the revive (parity with the live
        substrate, where restart spawns a brand-new RuntimeNode)."""
        scenario = _tiny_base()
        victim = scenario.alive_ids()[0]
        scenario.network.set_adversary(victim, ("Shuffle",))
        scenario.fail_nodes([victim])
        scenario.revive_node(victim)
        assert victim not in scenario.network.adversaries

    def test_adversary_applies_and_clears(self):
        scenario = _tiny_base()
        plan = FaultPlan(
            events=(AdversaryEvent(at=0.1, fraction=0.25, until=0.4),)
        )
        SimFaultDriver(scenario, plan).install()
        engine = scenario.engine
        engine.run_until(engine.now + 0.2)
        assert len(scenario.network.adversaries) == 6
        engine.run_until(engine.now + 0.3)
        assert scenario.network.adversaries == {}

    def test_driver_is_deterministic(self):
        frozen = _tiny_base().freeze()
        plan = FaultPlan(
            events=(
                CrashEvent(at=0.05, fraction=0.3),
                PartitionEvent(at=0.15, heal_at=0.35, rejoin=2),
                RestartEvent(at=0.45, fraction=1.0),
            )
        )
        outcomes = []
        for _ in range(2):
            scenario = _tiny_base().thaw(frozen)
            result = measure_fault_plan(
                scenario, plan, messages=4,
                phases=(Phase("all", 0.0, 0.6),),
            )
            outcomes.append(encode_artifact(json_safe(result)))
        assert outcomes[0] == outcomes[1]


class TestNetworkFaultHooks:
    def test_link_rule_validation(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError, match="loss_rate"):
            LinkFaultRule(loss_rate=1.5)
        with pytest.raises(SimulationError, match="link_fraction"):
            LinkFaultRule(link_fraction=0.0)
        with pytest.raises(SimulationError, match="extra latency"):
            LinkFaultRule(extra_latency=(0.5, 0.1))

    def test_link_fraction_selection_is_stable(self):
        scenario = _tiny_base()
        rule = LinkFaultRule(link_fraction=0.5, selector_seed=9)
        ids = scenario.node_ids
        first = [rule.applies(ids[0], other) for other in ids[1:]]
        second = [rule.applies(ids[0], other) for other in ids[1:]]
        assert first == second
        assert any(first) and not all(first)

    def test_loss_rule_drops_datagrams_not_reliable_sends(self):
        params = ExperimentParams.scaled(16, seed=7, stabilization_cycles=2)
        scenario = stabilized_scenario("cyclon", params)
        scenario.network.add_link_rule(LinkFaultRule(loss_rate=0.5))
        before = scenario.network.stats.snapshot()
        scenario.send_broadcasts(5)
        after = scenario.network.stats.snapshot()
        assert after["dropped_fault"] > before["dropped_fault"]

    def test_expired_rules_prune_themselves(self):
        scenario = _tiny_base()
        scenario.network.add_link_rule(
            LinkFaultRule(until=scenario.engine.now + 0.05, loss_rate=0.3)
        )
        assert len(scenario.network.link_rules) == 1
        scenario.engine.run_until(scenario.engine.now + 0.1)
        scenario.send_broadcasts(1)  # first post-expiry send prunes
        assert len(scenario.network.link_rules) == 0

    def test_adversary_drops_selected_types_silently(self):
        scenario = _tiny_base()
        victim = scenario.alive_ids()[1]
        scenario.network.set_adversary(victim, ("GossipData",))
        scenario.send_broadcasts(2)
        stats = scenario.network.stats.snapshot()
        assert stats["dropped_adversary"] > 0
        # Honesty restored: empty drop set removes the adversary.
        scenario.network.set_adversary(victim, ())
        assert scenario.network.adversaries == {}

    def test_duplicate_rule_reposts_datagrams(self):
        params = ExperimentParams.scaled(16, seed=7, stabilization_cycles=2)
        scenario = stabilized_scenario("cyclon", params)
        scenario.network.add_link_rule(LinkFaultRule(duplicate_rate=1.0))
        scenario.send_broadcasts(2)
        assert scenario.network.stats.duplicated_fault > 0


class TestByzantineVocabulary:
    def test_mutation_validation(self):
        with pytest.raises(ConfigurationError, match="message type"):
            MutationEvent(at=0.0, fraction=0.2, target_types=())
        with pytest.raises(ConfigurationError, match="rate"):
            MutationEvent(at=0.0, fraction=0.2, rate=0.0)
        with pytest.raises(ConfigurationError, match="mutation"):
            MutationEvent(at=0.5, fraction=0.2, until=0.5)
        event = MutationEvent(at=0.1, fraction=0.2)
        assert event.target_types == DEFAULT_MUTATION_TYPES
        assert not event.equivocate

    def test_collusion_validation(self):
        with pytest.raises(ConfigurationError, match="drop_types and/or"):
            CollusionEvent(at=0.0, count=3)
        event = CollusionEvent(at=0.1, count=3, drop_types=("GossipData",))
        assert "collude 3" in event.describe()

    def test_from_dict_byzantine_kinds(self):
        plan = FaultPlan.from_dict(
            {
                "events": [
                    {"kind": "mutation", "at": 0.1, "fraction": 0.2,
                     "target_types": ["GossipData"], "rate": 0.5},
                    {"kind": "equivocation", "at": 0.2, "count": 2},
                    {"kind": "collusion", "at": 0.3, "count": 3,
                     "drop_types": ["GossipData"],
                     "mutate_types": ["BRBSend"], "until": 0.6},
                ]
            }
        )
        mutation, equivocation, collusion = plan.events
        assert isinstance(mutation, MutationEvent) and not mutation.equivocate
        assert mutation.target_types == ("GossipData",)
        # The "equivocation" kind is mutation with the flag pre-set.
        assert isinstance(equivocation, MutationEvent) and equivocation.equivocate
        assert isinstance(collusion, CollusionEvent)
        assert collusion.mutate_types == ("BRBSend",)
        assert plan.horizon == 0.6
        assert json_safe(plan.describe()) == plan.describe()

    def test_byzantine_events_count_toward_population_floor(self):
        plan = FaultPlan(
            events=(
                MutationEvent(at=0.1, count=4),
                CollusionEvent(at=0.2, count=6, drop_types=("GossipData",)),
            )
        )
        assert plan.min_population == 6


class TestByzantineNetworkHooks:
    def _message(self, scenario, payload=("p", 1)):
        from repro.gossip.messages import BRBSend

        origin = scenario.node_ids[0]
        message_id = scenario.broadcast_layer(origin)._sequence.next_id()
        return BRBSend(message_id, payload, origin)

    def test_behavior_validation(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError, match="message type"):
            ByzantineBehavior(())
        with pytest.raises(SimulationError, match="rate"):
            ByzantineBehavior(("GossipData",), rate=0.0)

    def test_consistent_mutation_draws_no_randomness(self):
        scenario = _tiny_base()
        network = scenario.network
        src, a, b = scenario.node_ids[:3]
        network.set_byzantine(src, ByzantineBehavior(("BRBSend",)))
        message = self._message(scenario)
        state_before = network._fault_rng.getstate()
        to_a = network._corrupt(src, a, message)
        to_b = network._corrupt(src, b, message)
        # Consistent: every destination sees the same wrong value, derived
        # by hashing — the fault RNG is untouched at rate 1.0.
        assert to_a.payload == to_b.payload != message.payload
        assert to_a.payload[0] == "byz"
        assert network._fault_rng.getstate() == state_before
        assert network.stats.mutated_byz == 2

    def test_equivocation_diverges_per_destination(self):
        scenario = _tiny_base()
        network = scenario.network
        src, a, b = scenario.node_ids[:3]
        network.set_byzantine(
            src, ByzantineBehavior(("BRBSend",), equivocate=True)
        )
        message = self._message(scenario)
        to_a = network._corrupt(src, a, message)
        to_b = network._corrupt(src, b, message)
        assert to_a.payload != to_b.payload
        assert network.stats.equivocated_byz == 2

    def test_spared_destinations_get_genuine_frames(self):
        scenario = _tiny_base()
        network = scenario.network
        src, friend, mark = scenario.node_ids[:3]
        network.set_byzantine(
            src, ByzantineBehavior(("BRBSend",), spare=(friend,))
        )
        message = self._message(scenario)
        assert network._corrupt(src, friend, message) is message
        assert network._corrupt(src, mark, message).payload != message.payload

    def test_untargeted_types_pass_through(self):
        scenario = _tiny_base()
        network = scenario.network
        src, dst = scenario.node_ids[:2]
        network.set_byzantine(src, ByzantineBehavior(("GossipData",)))
        message = self._message(scenario)
        assert network._corrupt(src, dst, message) is message

    def test_collusion_spares_fellow_colluders(self):
        scenario = _tiny_base()
        network = scenario.network
        colluders = scenario.node_ids[:3]
        outsider = scenario.node_ids[5]
        network.set_collusion(
            colluders, drop_types=("BRBSend",), mutate_types=("BRBSend",)
        )
        assert network.byzantine_ids() == set(colluders)
        message = self._message(scenario)
        # Receiver-side: a colluder drops the outsider's frame but accepts
        # a fellow colluder's.
        assert network._collusion_blocks(outsider, colluders[1], message)
        assert not network._collusion_blocks(colluders[0], colluders[1], message)
        # Sender-side: outsiders get corrupted payloads, colluders don't.
        corrupted = network._corrupt(colluders[0], outsider, message)
        assert corrupted.payload != message.payload
        assert network._corrupt(colluders[0], colluders[2], message) is message
        network.clear_collusion(colluders)
        assert network.byzantine_ids() == set()

    def test_revive_restores_honesty(self):
        scenario = _tiny_base()
        victim = scenario.alive_ids()[0]
        scenario.network.set_byzantine(
            victim, ByzantineBehavior(("GossipData",))
        )
        scenario.network.set_collusion([victim], drop_types=("Shuffle",))
        scenario.fail_nodes([victim])
        scenario.revive_node(victim)
        assert victim not in scenario.network.byzantine_ids()

    def test_honest_runs_never_create_the_fault_stream(self):
        scenario = _tiny_base()
        scenario.send_broadcasts(3)
        assert scenario.network._fault_rng is None

    def test_driver_applies_and_clears_mutation(self):
        scenario = _tiny_base()
        plan = FaultPlan(
            events=(MutationEvent(at=0.1, fraction=0.25, until=0.4),)
        )
        driver = SimFaultDriver(scenario, plan)
        driver.install()
        engine = scenario.engine
        engine.run_until(engine.now + 0.2)
        assert len(scenario.network.byzantine_ids()) == 6
        engine.run_until(engine.now + 0.3)
        assert scenario.network.byzantine_ids() == set()
        descriptions = [d for _t, d in driver.applied]
        assert any("mutate" in d for d in descriptions)
        assert any("byzantine cleared" in d for d in descriptions)

    def test_driver_applies_and_clears_collusion(self):
        scenario = _tiny_base()
        plan = FaultPlan(
            events=(
                CollusionEvent(
                    at=0.1, count=4, drop_types=("GossipData",), until=0.4
                ),
            )
        )
        driver = SimFaultDriver(scenario, plan)
        driver.install()
        engine = scenario.engine
        engine.run_until(engine.now + 0.2)
        assert len(scenario.network.byzantine_ids()) == 4
        engine.run_until(engine.now + 0.3)
        assert scenario.network.byzantine_ids() == set()
