"""Tests for HyParView and experiment configuration validation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import HyParViewConfig
from repro.experiments.params import ExperimentParams, bench_params
from repro.protocols.cyclon import CyclonConfig
from repro.protocols.scamp import ScampConfig


class TestHyParViewConfig:
    def test_paper_defaults(self):
        config = HyParViewConfig.paper()
        assert config.active_view_capacity == 5
        assert config.passive_view_capacity == 30
        assert config.arwl == 6
        assert config.prwl == 3
        assert config.shuffle_ka == 3
        assert config.shuffle_kp == 4
        assert config.fanout == 4

    def test_shuffle_ttl_defaults_to_arwl(self):
        assert HyParViewConfig().effective_shuffle_ttl == 6
        assert HyParViewConfig(shuffle_ttl=2).effective_shuffle_ttl == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HyParViewConfig(active_view_capacity=0)
        with pytest.raises(ConfigurationError):
            HyParViewConfig(passive_view_capacity=0)
        with pytest.raises(ConfigurationError):
            HyParViewConfig(prwl=7, arwl=6)  # PRWL must be <= ARWL
        with pytest.raises(ConfigurationError):
            HyParViewConfig(arwl=-1)
        with pytest.raises(ConfigurationError):
            HyParViewConfig(shuffle_ka=-1)
        with pytest.raises(ConfigurationError):
            HyParViewConfig(shuffle_ttl=0)
        with pytest.raises(ConfigurationError):
            HyParViewConfig(shuffle_period=0)
        with pytest.raises(ConfigurationError):
            HyParViewConfig(neighbor_request_timeout=0)
        with pytest.raises(ConfigurationError):
            HyParViewConfig(promotion_retry_delay=0)
        with pytest.raises(ConfigurationError):
            HyParViewConfig(promotion_max_passes=-1)

    def test_scaled_keeps_active_view(self):
        scaled = HyParViewConfig().scaled(500)
        assert scaled.active_view_capacity == 5
        assert scaled.passive_view_capacity < 30

    def test_scaled_at_paper_size_matches_paper(self):
        assert HyParViewConfig().scaled(10_000).passive_view_capacity == 30

    def test_scaled_respects_log_floor(self):
        import math

        for n in (50, 200, 1000, 10000):
            scaled = HyParViewConfig().scaled(n)
            assert scaled.passive_view_capacity > math.log(n)

    def test_scaled_rejects_tiny_system(self):
        with pytest.raises(ConfigurationError):
            HyParViewConfig().scaled(1)


class TestBaselineConfigs:
    def test_cyclon_paper_values(self):
        config = CyclonConfig()
        assert config.view_size == 35
        assert config.shuffle_length == 14
        assert config.walk_ttl == 5
        assert config.effective_join_walks == 35

    def test_cyclon_validation(self):
        with pytest.raises(ConfigurationError):
            CyclonConfig(view_size=0)
        with pytest.raises(ConfigurationError):
            CyclonConfig(shuffle_length=0)
        with pytest.raises(ConfigurationError):
            CyclonConfig(view_size=5, shuffle_length=6)
        with pytest.raises(ConfigurationError):
            CyclonConfig(walk_ttl=-1)
        with pytest.raises(ConfigurationError):
            CyclonConfig(join_walks=0)

    def test_scamp_paper_values(self):
        assert ScampConfig().c == 4

    def test_scamp_validation(self):
        with pytest.raises(ConfigurationError):
            ScampConfig(c=-1)
        with pytest.raises(ConfigurationError):
            ScampConfig(max_forward_hops=0)
        with pytest.raises(ConfigurationError):
            ScampConfig(lease_cycles=0)
        with pytest.raises(ConfigurationError):
            ScampConfig(isolation_cycles=0)


class TestExperimentParams:
    def test_paper_configuration(self):
        params = ExperimentParams.paper()
        assert params.n == 10_000
        assert params.fanout == 4
        assert params.stabilization_cycles == 50
        assert params.cyclon.view_size == 35
        assert params.scamp.c == 4

    def test_scaled_preserves_relations(self):
        params = ExperimentParams.scaled(500)
        hv = params.hyparview
        assert params.cyclon.view_size == hv.active_view_capacity + hv.passive_view_capacity
        assert params.fanout == 4

    def test_scaled_cyclon_view_bounded_by_n(self):
        params = ExperimentParams.scaled(20)
        assert params.cyclon.view_size <= 19

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentParams(n=1)
        with pytest.raises(ConfigurationError):
            ExperimentParams(fanout=0)
        with pytest.raises(ConfigurationError):
            ExperimentParams(stabilization_cycles=-1)
        with pytest.raises(ConfigurationError):
            ExperimentParams(latency_seconds=-1)

    def test_with_seed(self):
        params = ExperimentParams.scaled(100).with_seed(7)
        assert params.seed == 7
        assert params.n == 100

    def test_bench_params_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "123")
        monkeypatch.delenv("REPRO_BENCH_PAPER", raising=False)
        assert bench_params().n == 123
        monkeypatch.setenv("REPRO_BENCH_PAPER", "1")
        assert bench_params().n == 10_000
