"""Tests for latency models."""

import random

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import NodeId
from repro.sim.latency import ConstantLatency, CoordinateLatency, UniformLatency

A = NodeId("a", 1)
B = NodeId("b", 2)


class TestConstantLatency:
    def test_constant(self):
        model = ConstantLatency(0.05)
        rng = random.Random(0)
        assert model.delay(A, B, rng) == 0.05
        assert model.delay(B, A, rng) == 0.05

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(0.01, 0.05)
        rng = random.Random(0)
        for _ in range(100):
            delay = model.delay(A, B, rng)
            assert 0.01 <= delay <= 0.05

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.05, 0.01)
        with pytest.raises(ConfigurationError):
            UniformLatency(-0.1, 0.1)

    def test_varies_per_message(self):
        model = UniformLatency(0.0, 1.0)
        rng = random.Random(0)
        delays = {model.delay(A, B, rng) for _ in range(10)}
        assert len(delays) > 1


class TestCoordinateLatency:
    def test_symmetric_and_stable(self):
        model = CoordinateLatency()
        rng = random.Random(0)
        d1 = model.delay(A, B, rng)
        d2 = model.delay(A, B, rng)
        d3 = model.delay(B, A, rng)
        assert d1 == d2 == d3

    def test_self_delay_is_base(self):
        model = CoordinateLatency(base=0.005)
        rng = random.Random(0)
        assert model.delay(A, A, rng) == pytest.approx(0.005)

    def test_distance_increases_delay(self):
        model = CoordinateLatency(base=0.0, per_unit=1.0)
        rng = random.Random(0)
        assert model.delay(A, B, rng) > 0.0

    def test_stable_across_instances(self):
        rng = random.Random(0)
        assert CoordinateLatency().delay(A, B, rng) == CoordinateLatency().delay(A, B, rng)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CoordinateLatency(base=-1.0)
        with pytest.raises(ConfigurationError):
            CoordinateLatency(per_unit=-1.0)
