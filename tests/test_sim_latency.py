"""Tests for latency models."""

import pickle
import random
from types import SimpleNamespace

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import NodeId
from repro.sim.latency import (
    ConstantLatency,
    CoordinateLatency,
    UniformLatency,
    ZonedLatency,
    build_latency_model,
)

A = NodeId("a", 1)
B = NodeId("b", 2)


class TestConstantLatency:
    def test_constant(self):
        model = ConstantLatency(0.05)
        rng = random.Random(0)
        assert model.delay(A, B, rng) == 0.05
        assert model.delay(B, A, rng) == 0.05

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1.0)


class TestUniformLatency:
    def test_within_bounds(self):
        model = UniformLatency(0.01, 0.05)
        rng = random.Random(0)
        for _ in range(100):
            delay = model.delay(A, B, rng)
            assert 0.01 <= delay <= 0.05

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.05, 0.01)
        with pytest.raises(ConfigurationError):
            UniformLatency(-0.1, 0.1)

    def test_varies_per_message(self):
        model = UniformLatency(0.0, 1.0)
        rng = random.Random(0)
        delays = {model.delay(A, B, rng) for _ in range(10)}
        assert len(delays) > 1


class TestCoordinateLatency:
    def test_symmetric_and_stable(self):
        model = CoordinateLatency()
        rng = random.Random(0)
        d1 = model.delay(A, B, rng)
        d2 = model.delay(A, B, rng)
        d3 = model.delay(B, A, rng)
        assert d1 == d2 == d3

    def test_self_delay_is_base(self):
        model = CoordinateLatency(base=0.005)
        rng = random.Random(0)
        assert model.delay(A, A, rng) == pytest.approx(0.005)

    def test_distance_increases_delay(self):
        model = CoordinateLatency(base=0.0, per_unit=1.0)
        rng = random.Random(0)
        assert model.delay(A, B, rng) > 0.0

    def test_stable_across_instances(self):
        rng = random.Random(0)
        assert CoordinateLatency().delay(A, B, rng) == CoordinateLatency().delay(A, B, rng)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            CoordinateLatency(base=-1.0)
        with pytest.raises(ConfigurationError):
            CoordinateLatency(per_unit=-1.0)


class TestZonedLatency:
    def test_base_delay_symmetric_and_stable_across_instances(self):
        a, b = NodeId("n3", 9000), NodeId("n11", 9000)
        assert ZonedLatency().base_delay(a, b) == ZonedLatency().base_delay(b, a)

    def test_zone_assignment_is_a_pure_function_of_identity(self):
        node = NodeId("n42", 9000)
        assert ZonedLatency().zone_of(node) == ZonedLatency().zone_of(node)
        assert 0 <= ZonedLatency(zones=4).zone_of(node) < 4

    def test_intra_zone_cheaper_than_inter_zone_band(self):
        model = ZonedLatency(zones=4)
        nodes = [NodeId(f"n{i}", 9000) for i in range(64)]
        intra_high, inter_low = model.intra[1], model.inter[0]
        assert intra_high < inter_low  # the default bands must not overlap
        for a in nodes[:8]:
            for b in nodes:
                if a == b:
                    continue
                base = model.base_delay(a, b)
                if model.zone_of(a) == model.zone_of(b):
                    assert model.intra[0] <= base <= intra_high
                else:
                    assert inter_low <= base <= model.inter[1]

    def test_jitter_stays_within_fraction_and_above_min_delay(self):
        model = ZonedLatency()
        rng = random.Random(3)
        a, b = NodeId("n1", 9000), NodeId("n2", 9000)
        base = model.base_delay(a, b)
        for _ in range(200):
            delay = model.delay(a, b, rng)
            assert base * (1.0 - model.jitter) <= delay <= base * (1.0 + model.jitter)
            assert delay >= model.min_delay()

    def test_zero_jitter_reproduces_base_delay(self):
        model = ZonedLatency(jitter=0.0)
        rng = random.Random(0)
        a, b = NodeId("n1", 9000), NodeId("n2", 9000)
        assert model.delay(a, b, rng) == model.base_delay(a, b)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            ZonedLatency(zones=0)
        with pytest.raises(ConfigurationError):
            ZonedLatency(intra=(0.01, 0.005))
        with pytest.raises(ConfigurationError):
            ZonedLatency(jitter=1.0)

    def test_model_pickles_with_caches(self):
        model = ZonedLatency()
        a, b = NodeId("n1", 9000), NodeId("n2", 9000)
        expected = model.base_delay(a, b)  # populate the caches first
        clone = pickle.loads(pickle.dumps(model))
        assert clone.base_delay(a, b) == expected


class TestBuildLatencyModel:
    def test_default_is_the_historical_constant_model(self):
        model = build_latency_model(SimpleNamespace(latency_seconds=0.01))
        assert isinstance(model, ConstantLatency)
        assert model.delay(A, B, random.Random(0)) == 0.01

    def test_zoned_selector_reads_zone_count(self):
        model = build_latency_model(
            SimpleNamespace(latency_model="zoned", latency_zones=5)
        )
        assert isinstance(model, ZonedLatency)
        assert model.zones == 5

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_latency_model(SimpleNamespace(latency_model="wormhole"))
