"""Tests for the message registry and generic wire codec."""

from dataclasses import dataclass

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import CodecError
from repro.common.ids import MessageId, NodeId
from repro.common.messages import (
    Message,
    decode_message,
    encode_message,
    register_message,
    registered_message_types,
    wire_name_of,
)
from repro.core.messages import ForwardJoin, Join, Shuffle
from repro.gossip.messages import GossipData

node_ids = st.builds(
    NodeId,
    st.text(min_size=1, max_size=8, alphabet="abcdefgh"),
    st.integers(min_value=1, max_value=65535),
)
message_ids = st.builds(MessageId, node_ids, st.integers(min_value=0, max_value=10**9))


class TestRegistry:
    def test_wire_name_of_registered(self):
        assert wire_name_of(Join(NodeId("a", 1))) == "hyparview.join"

    def test_unregistered_type_raises(self):
        @dataclass(frozen=True, slots=True)
        class Rogue(Message):
            x: int

        with pytest.raises(CodecError):
            wire_name_of(Rogue(1))

    def test_duplicate_name_rejected(self):
        with pytest.raises(CodecError):

            @register_message("hyparview.join")
            @dataclass(frozen=True, slots=True)
            class Clash(Message):
                x: int

    def test_non_dataclass_rejected(self):
        with pytest.raises(CodecError):

            @register_message("not.a.dataclass")
            class Bad(Message):
                pass

    def test_all_protocol_messages_registered(self):
        names = {cls.__name__ for cls in registered_message_types()}
        for expected in (
            "Join",
            "ForwardJoin",
            "Neighbor",
            "Disconnect",
            "Shuffle",
            "ShuffleReply",
            "GossipData",
            "CyclonShuffleRequest",
            "ScampSubscribe",
            "PlumtreeGossip",
        ):
            assert expected in names


class TestCodec:
    def test_join_roundtrip(self):
        message = Join(NodeId("host", 1234))
        assert decode_message(encode_message(message)) == message

    def test_forward_join_roundtrip(self):
        message = ForwardJoin(NodeId("n", 1), 6, NodeId("s", 2))
        assert decode_message(encode_message(message)) == message

    def test_shuffle_roundtrip_with_tuple_field(self):
        exchange = (NodeId("a", 1), NodeId("b", 2), NodeId("c", 3))
        message = Shuffle(NodeId("o", 1), NodeId("s", 2), 4, exchange)
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert isinstance(decoded.exchange, tuple)

    def test_gossip_data_roundtrip_with_payload(self):
        message = GossipData(MessageId(NodeId("o", 1), 7), "payload", 3, NodeId("s", 2))
        assert decode_message(encode_message(message)) == message

    def test_decode_unknown_type(self):
        with pytest.raises(CodecError):
            decode_message({"type": "no.such.message", "fields": {}})

    def test_decode_malformed_payload(self):
        with pytest.raises(CodecError):
            decode_message({"nope": 1})
        with pytest.raises(CodecError):
            decode_message("not a dict")

    def test_decode_field_mismatch(self):
        encoded = encode_message(Join(NodeId("a", 1)))
        encoded["fields"]["extra"] = 1
        with pytest.raises(CodecError):
            decode_message(encoded)
        del encoded["fields"]["extra"]
        del encoded["fields"]["new_node"]
        with pytest.raises(CodecError):
            decode_message(encoded)

    def test_unencodable_value_rejected(self):
        message = GossipData(MessageId(NodeId("o", 1), 0), object(), 0, NodeId("s", 1))
        with pytest.raises(CodecError):
            encode_message(message)

    @given(node_ids, st.integers(min_value=0, max_value=255), node_ids)
    def test_forward_join_roundtrip_property(self, new_node, ttl, sender):
        message = ForwardJoin(new_node, ttl, sender)
        assert decode_message(encode_message(message)) == message

    @given(
        message_ids,
        st.one_of(
            st.none(),
            st.integers(min_value=-(10**9), max_value=10**9),
            st.text(max_size=64),
            st.booleans(),
            st.lists(st.integers(min_value=0, max_value=9), max_size=5),
        ),
        st.integers(min_value=0, max_value=64),
        node_ids,
    )
    def test_gossip_roundtrip_property(self, mid, payload, hops, sender):
        message = GossipData(mid, payload, hops, sender)
        decoded = decode_message(encode_message(message))
        assert decoded.message_id == message.message_id
        assert decoded.hops == message.hops
        assert decoded.sender == message.sender
        # JSON-style lists come back as tuples; values are preserved.
        if isinstance(payload, list):
            assert list(decoded.payload) == payload
        else:
            assert decoded.payload == payload
