"""Tests for the unified metrics plane (repro.obs.metrics / collectors / http).

Instruments must render deterministically (sorted names, sorted label
sets) for the ``METRICS_*.json`` artifacts; the collectors must mirror
the codebase's scattered plain-int counters without touching them; the
exposition endpoint must serve valid Prometheus text format over a bare
socket.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.metrics.latency import LatencyHistogram
from repro.obs.collectors import (
    bind_kernel,
    bind_latency,
    bind_network,
    bind_pubsub_cluster,
    bind_shard_sync,
    bind_transport,
)
from repro.obs.http import CONTENT_TYPE, MetricsServer, scrape
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def run(coroutine, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


class TestInstruments:
    def test_counter_inc_and_mirror(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2, node="a")
        assert counter.value() == 1
        assert counter.value(node="a") == 2
        counter.set_total(9, node="a")
        assert counter.value(node="a") == 9

    def test_counter_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5, node="a")
        gauge.inc(-2, node="a")
        assert gauge.value(node="a") == 3

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        samples = {name + str(dict(key)): value for name, key, value in histogram.samples()}
        assert samples["h_bucket{'le': '0.1'}"] == 1
        assert samples["h_bucket{'le': '1'}"] == 2
        assert samples["h_bucket{'le': '+Inf'}"] == 3
        assert samples["h_count{}"] == 3
        assert samples["h_sum{}"] == pytest.approx(5.55)


class TestRegistry:
    def test_same_name_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_type_conflicts_are_errors(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(TypeError, match="already registered as counter"):
            registry.gauge("x_total")
        with pytest.raises(TypeError):
            registry.histogram("x_total")

    def test_snapshot_is_sorted_and_insertion_order_free(self):
        def build(order):
            registry = MetricsRegistry()
            for name, labels in order:
                registry.counter(name).inc(1, **labels)
            return registry.snapshot()

        series = [("b_total", {"node": "n2"}), ("a_total", {}), ("b_total", {"node": "n1"})]
        snapshot = build(series)
        assert snapshot == build(list(reversed(series)))
        assert list(snapshot) == ["a_total", "b_total"]
        assert list(snapshot["b_total"]) == ['b_total{node="n1"}', 'b_total{node="n2"}']

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests served").inc(3, path='/a"b\n')
        registry.gauge("depth").set(1.5)
        text = registry.render_prometheus()
        assert "# HELP req_total Requests served\n" in text
        assert "# TYPE req_total counter\n" in text
        assert 'req_total{path="/a\\"b\\n"} 3\n' in text
        assert "# TYPE depth gauge" in text
        assert "depth 1.5" in text
        assert text.endswith("\n")

    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live")
        state = {"value": 1}
        registry.register_collector(lambda: gauge.set(state["value"]))
        assert registry.snapshot()["live"] == {"live": 1}
        state["value"] = 7
        assert registry.snapshot()["live"] == {"live": 7}


class FakeStats:
    def __init__(self, snapshot):
        self._snapshot = snapshot

    def snapshot(self):
        return dict(self._snapshot)


class TestCollectors:
    def test_bind_network(self):
        registry = MetricsRegistry()

        class Net:
            stats = FakeStats(
                {"delivered": 10, "dropped_loss": 2, "messages_by_type": {"GossipData": 8}}
            )

        bind_network(registry, Net())
        snapshot = registry.snapshot()
        assert snapshot["repro_net_events_total"]['repro_net_events_total{outcome="delivered"}'] == 10
        assert snapshot["repro_net_messages_total"]['repro_net_messages_total{type="GossipData"}'] == 8

    def test_bind_kernel_tracks_the_live_counter(self):
        from repro.sim.engine import Engine, events_fired_total

        registry = MetricsRegistry()
        bind_kernel(registry)
        engine = Engine()
        engine.post(0.0, lambda: None)
        engine.run_until_idle()
        value = registry.snapshot()["repro_kernel_events_fired_total"][
            "repro_kernel_events_fired_total"
        ]
        assert value == events_fired_total() > 0

    def test_bind_shard_sync(self):
        registry = MetricsRegistry()

        class Eng:
            sync = FakeStats({"windows": 4, "handoffs": 9})

        bind_shard_sync(registry, Eng())
        series = registry.snapshot()["repro_shard_sync_total"]
        assert series['repro_shard_sync_total{kind="handoffs"}'] == 9

    def test_bind_latency_quantile_gauges(self):
        registry = MetricsRegistry()
        histogram = LatencyHistogram()
        for i in range(1, 101):
            histogram.record(i / 1000.0)
        bind_latency(registry, "repro_lat", lambda: histogram, phase="steady")
        series = registry.snapshot()["repro_lat"]
        assert series['repro_lat{phase="steady",quantile="0.5"}'] == pytest.approx(0.05)
        assert series['repro_lat{phase="steady",quantile="0.999"}'] == pytest.approx(0.1)
        counts = registry.snapshot()["repro_lat_count"]
        assert counts['repro_lat_count{phase="steady"}'] == 100

    def test_bind_latency_none_supplier_skips(self):
        registry = MetricsRegistry()
        bind_latency(registry, "repro_lat", lambda: None)
        assert registry.snapshot()["repro_lat"] == {}

    def test_bind_transport(self):
        registry = MetricsRegistry()

        class Transport:
            frames_sent = 5
            frames_received = 4
            frames_stale = 1
            stale_handshakes = 0
            frames_overflow = 0
            frames_rejected = 2
            frames_faulted = 0
            epoch = 3

        bind_transport(registry, Transport(), node="n1")
        snapshot = registry.snapshot()
        frames = snapshot["repro_transport_frames_total"]
        assert frames['repro_transport_frames_total{node="n1",outcome="frames_sent"}'] == 5
        assert frames['repro_transport_frames_total{node="n1",outcome="frames_stale"}'] == 1
        assert snapshot["repro_transport_epoch"]['repro_transport_epoch{node="n1"}'] == 3

    def test_bind_pubsub_cluster_reads_facades_at_collect_time(self):
        class Guard:
            rejected = 2

            def trips(self):
                return 1

            def open_peers(self):
                return ["x"]

        class Transport:
            frames_sent = 7
            frames_received = 6
            frames_stale = 0
            stale_handshakes = 0
            frames_overflow = 0
            frames_rejected = 0
            frames_faulted = 0
            epoch = 1

        class Inner:
            node_id = "127.0.0.1:9001"
            transport = Transport()

        class Client:
            rate_limited = 4

        class Facade:
            node = Inner()
            guard = Guard()
            clients = {"c1": Client(), "c2": Client()}
            messages_published = 20
            messages_delivered = 18
            messages_dropped = 1
            messages_ignored = 0
            topic_rate_limited = 3

        class Service:
            facades = []

        service = Service()
        registry = MetricsRegistry()
        bind_pubsub_cluster(registry, service)
        # No facades yet: the binding itself publishes nothing.
        assert registry.snapshot()["repro_service_published_total"] == {}
        # Facades appearing later (e.g. after a node restart) are picked up.
        service.facades = [Facade()]
        snapshot = registry.snapshot()
        label = '{node="127.0.0.1:9001"}'
        assert snapshot["repro_service_published_total"][f"repro_service_published_total{label}"] == 20
        assert (
            snapshot["repro_service_client_rate_limited_total"][
                f"repro_service_client_rate_limited_total{label}"
            ]
            == 8
        )
        assert snapshot["repro_breaker_trips_total"][f"repro_breaker_trips_total{label}"] == 1
        assert snapshot["repro_breaker_open"][f"repro_breaker_open{label}"] == 1
        assert (
            snapshot["repro_transport_frames_total"][
                'repro_transport_frames_total{node="127.0.0.1:9001",outcome="frames_sent"}'
            ]
            == 7
        )


class TestMetricsServer:
    def test_serves_and_scrapes_exposition(self):
        async def exercise():
            registry = MetricsRegistry()
            registry.counter("up_total", "Liveness").inc(1)
            server = await MetricsServer(registry).start()
            try:
                body = await scrape("127.0.0.1", server.port)
                root = await scrape("127.0.0.1", server.port, path="/")
            finally:
                await server.close()
            return body, root

        body, root = run(exercise())
        assert "# TYPE up_total counter" in body
        assert "up_total 1" in body
        assert body == root

    def test_unknown_path_is_http_404(self):
        async def exercise():
            server = await MetricsServer(MetricsRegistry()).start()
            try:
                with pytest.raises(RuntimeError, match="HTTP 404"):
                    await scrape("127.0.0.1", server.port, path="/nope")
            finally:
                await server.close()

        run(exercise())

    def test_port_requires_running_server(self):
        with pytest.raises(RuntimeError):
            MetricsServer(MetricsRegistry()).port

    def test_content_type_is_prometheus_text(self):
        assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")
