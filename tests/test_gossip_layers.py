"""Tests for the eager gossip and flood broadcast layers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import HyParViewConfig
from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario

SMALL = HyParViewConfig(active_view_capacity=3, passive_view_capacity=5)


def flood_world(world, count, config=SMALL):
    nodes = world.hyparview_many(count, config=config)
    layers = [world.with_flood(node, proto) for node, proto in nodes]
    world.join_chain([p for _, p in nodes])
    return nodes, layers


def eager_world(world, count, fanout=2, acked=False):
    nodes = [world.cyclon() for _ in range(count)]
    layers = [world.with_eager(node, proto, fanout=fanout, acked=acked) for node, proto in nodes]
    world.join_chain([p for _, p in nodes])
    return nodes, layers


class TestFloodBroadcast:
    def test_reaches_all_nodes_in_connected_overlay(self, world):
        nodes, layers = flood_world(world, 8)
        mid = layers[0].broadcast("hello")
        world.drain()
        for layer in layers:
            assert layer.has_delivered(mid)

    def test_payload_passed_to_deliver_callback(self, world):
        (node_a, a), (node_b, b) = world.hyparview_many(2, config=SMALL)
        got = []
        from repro.gossip.flood import FloodBroadcast

        layer_a = node_a.wire("gossip", FloodBroadcast(node_a.host("gossip"), a, world.tracker))
        node_b.wire(
            "gossip",
            FloodBroadcast(
                node_b.host("gossip"), b, world.tracker, on_deliver=lambda m, p: got.append(p)
            ),
        )
        world.join_chain([a, b])
        layer_a.broadcast({"k": 1})
        world.drain()
        assert got == [{"k": 1}]

    def test_duplicates_counted_not_redelivered(self, world):
        nodes, layers = flood_world(world, 8)
        layers[0].broadcast("x")
        world.drain()
        assert sum(layer.delivered_count for layer in layers) == len(layers)
        assert sum(layer.duplicate_count for layer in layers) > 0  # flooding is redundant

    def test_send_failure_triggers_membership_repair(self, world):
        nodes, layers = flood_world(world, 6)
        victim_node, victim_proto = nodes[3]
        # Make the failure visible only at send time: no watch notification
        # has fired yet because we drain only after the broadcast.
        world.network.fail(victim_node.node_id)
        layers[0].broadcast("probe")
        world.drain()
        for _, proto in nodes:
            if proto is not victim_proto:
                assert victim_proto.address not in proto.active

    def test_hop_counts_recorded(self, world):
        nodes, layers = flood_world(world, 10)
        mid = layers[0].broadcast("x")
        world.drain()
        summary = world.tracker.finalize(mid, frozenset(n.node_id for n, _ in nodes))
        assert summary.max_hops >= 1
        assert summary.reliability == 1.0

    def test_resend_on_repair_config_validation(self, world):
        node, proto = world.hyparview(config=SMALL)
        from repro.gossip.flood import FloodBroadcast

        with pytest.raises(ConfigurationError):
            FloodBroadcast(node.host("g1"), proto, resend_delay=0)
        with pytest.raises(ConfigurationError):
            FloodBroadcast(node.host("g2"), proto, resend_memory=0)


class TestEagerGossip:
    def test_fanout_validation(self, world):
        node, proto = world.cyclon()
        from repro.gossip.eager import EagerGossip

        with pytest.raises(ConfigurationError):
            EagerGossip(node.host("gossip"), proto, fanout=0)

    def test_delivery_with_sufficient_fanout(self, world):
        nodes, layers = eager_world(world, 10, fanout=4)
        mid = layers[0].broadcast("x")
        world.drain()
        delivered = sum(1 for layer in layers if layer.has_delivered(mid))
        assert delivered >= 8  # fanout 4 over 10 nodes: near-full coverage

    def test_forward_excludes_sender(self, world):
        (na, a), (nb, b) = world.cyclon(), world.cyclon()
        layer_a = world.with_eager(na, a, fanout=3)
        world.with_eager(nb, b, fanout=3)
        b.join(a.address)
        world.drain()
        layer_a.broadcast("x")
        world.drain()
        # b's only view member is a (the sender): it must not echo back.
        assert world.network.stats.messages_by_type.get("GossipData", 0) == 1

    def test_unacked_gossip_leaves_views_dirty(self, world):
        nodes, layers = eager_world(world, 6, fanout=3, acked=False)
        victim_node, victim_proto = nodes[2]
        world.network.fail(victim_node.node_id)
        for _ in range(5):
            layers[0].broadcast("x")
            world.drain()
        holders = sum(
            1 for _, p in nodes if p is not victim_proto and victim_proto.address in p.view
        )
        assert holders > 0  # stale entries survive plain gossip

    def test_acked_gossip_cleans_views(self, world):
        # Acked gossip only helps a membership protocol that reacts to the
        # reports — CyclonAcked, not plain Cyclon.
        nodes = [world.cyclon_acked() for _ in range(6)]
        layers = [world.with_eager(n, p, fanout=5, acked=True) for n, p in nodes]
        world.join_chain([p for _, p in nodes])
        victim_node, victim_proto = nodes[2]
        world.network.fail(victim_node.node_id)
        for _ in range(6):
            for layer in layers:
                if layer.membership is not victim_proto:
                    layer.broadcast("x")
            world.drain()
        holders = sum(
            1 for _, p in nodes if p is not victim_proto and victim_proto.address in p.view
        )
        assert holders == 0

    def test_seen_capacity_bounds_memory(self, world):
        (na, a), (nb, b) = world.cyclon(), world.cyclon()
        world.with_eager(na, a, fanout=2)
        from repro.gossip.eager import EagerGossip

        layer_b = nb.wire(
            "gossip",
            EagerGossip(nb.host("gossip"), b, world.tracker, fanout=2, seen_capacity=5),
        )
        b.join(a.address)
        world.drain()
        mids = [layer_b.broadcast(i) for i in range(10)]
        world.drain()
        assert not layer_b.has_delivered(mids[0])  # evicted
        assert layer_b.has_delivered(mids[-1])


class TestScenarioLevelGossip:
    def test_hyparview_atomic_broadcast_in_stable_overlay(self):
        params = ExperimentParams.scaled(100, stabilization_cycles=10)
        scenario = Scenario("hyparview", params)
        scenario.build_overlay()
        scenario.stabilize()
        summaries = scenario.send_broadcasts(10)
        assert all(s.reliability == 1.0 for s in summaries)

    def test_eager_gossip_reliability_monotone_in_fanout(self):
        params = ExperimentParams.scaled(150, stabilization_cycles=10)
        scenario = Scenario("cyclon", params)
        scenario.build_overlay()
        scenario.stabilize()
        averages = []
        for fanout in (1, 3, 6):
            clone = scenario.clone()
            for node_id in clone.node_ids:
                clone.broadcast_layer(node_id).fanout = fanout
            summaries = clone.send_broadcasts(15)
            averages.append(sum(s.reliability for s in summaries) / len(summaries))
        assert averages[0] < averages[1] <= averages[2] + 1e-9

    def test_broadcast_from_dead_origin_rejected(self):
        params = ExperimentParams.scaled(50, stabilization_cycles=5)
        scenario = Scenario("hyparview", params)
        scenario.build_overlay()
        victim = scenario.node_ids[3]
        scenario.fail_nodes([victim])
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            scenario.send_broadcast(origin=victim)
