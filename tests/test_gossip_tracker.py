"""Tests for broadcast delivery tracking."""

import pytest

from repro.common.errors import ProtocolError
from repro.common.ids import MessageId, NodeId
from repro.gossip.tracker import BroadcastTracker


def nid(i):
    return NodeId(f"n{i}", 1)


def mid(i):
    return MessageId(nid(0), i)


class TestTracking:
    def test_broadcast_and_deliveries(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        tracker.on_deliver(mid(1), nid(0), now=0.0, hops=0)
        tracker.on_deliver(mid(1), nid(1), now=0.1, hops=1)
        tracker.on_deliver(mid(1), nid(2), now=0.3, hops=3)
        record = tracker.record(mid(1))
        assert record.delivery_count == 3
        assert record.max_hops == 3
        assert record.delivered_to(nid(1))
        assert not record.delivered_to(nid(9))

    def test_duplicate_delivery_counted_as_redundant(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        tracker.on_deliver(mid(1), nid(1), now=0.1, hops=1)
        tracker.on_deliver(mid(1), nid(1), now=0.2, hops=2)
        record = tracker.record(mid(1))
        assert record.delivery_count == 1
        assert record.redundant == 1

    def test_explicit_redundant_and_transmissions(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        tracker.on_redundant(mid(1), nid(2))
        tracker.on_transmit(mid(1), 5)
        record = tracker.record(mid(1))
        assert record.redundant == 1
        assert record.transmissions == 5

    def test_duplicate_broadcast_id_rejected(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        with pytest.raises(ProtocolError):
            tracker.on_broadcast(mid(1), nid(0), now=0.0)

    def test_events_for_unknown_message_ignored(self):
        tracker = BroadcastTracker()
        tracker.on_deliver(mid(9), nid(1), now=0.0, hops=1)  # must not raise
        tracker.on_redundant(mid(9), nid(1))
        tracker.on_transmit(mid(9))

    def test_reliability_against_population(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        for i in range(3):
            tracker.on_deliver(mid(1), nid(i), now=0.1, hops=1)
        population = frozenset(nid(i) for i in range(4))
        assert tracker.record(mid(1)).reliability(population) == 0.75

    def test_reliability_excludes_non_population_deliveries(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        tracker.on_deliver(mid(1), nid(99), now=0.1, hops=1)  # a dead node?
        population = frozenset([nid(0), nid(1)])
        assert tracker.record(mid(1)).reliability(population) == 0.0

    def test_empty_population(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        assert tracker.record(mid(1)).reliability(frozenset()) == 0.0


class TestFinalize:
    def test_finalize_produces_summary_and_frees_record(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=1.0)
        tracker.on_deliver(mid(1), nid(0), now=1.0, hops=0)
        tracker.on_deliver(mid(1), nid(1), now=1.5, hops=2)
        tracker.on_transmit(mid(1), 4)
        population = frozenset([nid(0), nid(1), nid(2), nid(3)])
        summary = tracker.finalize(mid(1), population)
        assert summary.delivered == 2
        assert summary.reliability == 0.5
        assert summary.max_hops == 2
        assert summary.last_delivery_at == 1.5
        assert summary.transmissions == 4
        assert summary.population_size == 4
        with pytest.raises(ProtocolError):
            tracker.record(mid(1))
        assert tracker.summary(mid(1)) == summary

    def test_finalize_twice_rejected(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        tracker.finalize(mid(1), frozenset([nid(0)]))
        with pytest.raises(ProtocolError):
            tracker.finalize(mid(1), frozenset([nid(0)]))

    def test_late_deliveries_after_finalize_ignored(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        tracker.finalize(mid(1), frozenset([nid(0)]))
        tracker.on_deliver(mid(1), nid(1), now=9.0, hops=1)  # no effect
        assert tracker.summary(mid(1)).delivered == 0

    def test_drop_summaries(self):
        tracker = BroadcastTracker()
        tracker.on_broadcast(mid(1), nid(0), now=0.0)
        tracker.finalize(mid(1), frozenset([nid(0)]))
        assert len(tracker) == 1
        tracker.drop_summaries()
        assert len(tracker) == 0

    def test_unknown_finalize_rejected(self):
        tracker = BroadcastTracker()
        with pytest.raises(ProtocolError):
            tracker.finalize(mid(1), frozenset())
