"""Integration tests: HyParView overlays at small-but-real scale.

These exercise the emergent properties the paper relies on: active-view
symmetry, connectivity, bounded degrees, catastrophic-failure repair.
"""

import pytest

from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario


def hyparview_scenario(n, seed=42, cycles=15):
    params = ExperimentParams.scaled(n, seed=seed, stabilization_cycles=cycles)
    scenario = Scenario("hyparview", params)
    scenario.build_overlay()
    return scenario


def active_views(scenario):
    return {
        node_id: scenario.membership(node_id).active_members()
        for node_id in scenario.alive_ids()
    }


def assert_symmetric(scenario):
    views = active_views(scenario)
    for node_id, members in views.items():
        for peer in members:
            assert node_id in views[peer], f"{node_id} -> {peer} not symmetric"


class TestOverlayConstruction:
    def test_views_respect_capacity(self):
        scenario = hyparview_scenario(120)
        capacity = scenario.params.hyparview.active_view_capacity
        for node_id in scenario.node_ids:
            protocol = scenario.membership(node_id)
            assert len(protocol.active) <= capacity
            assert len(protocol.passive) <= protocol.passive.capacity

    def test_no_self_loops_and_disjoint_views(self):
        scenario = hyparview_scenario(120)
        for node_id in scenario.node_ids:
            protocol = scenario.membership(node_id)
            assert node_id not in protocol.active
            assert node_id not in protocol.passive
            assert not set(protocol.active_members()) & set(protocol.passive_members())

    def test_overlay_connected_after_join(self):
        scenario = hyparview_scenario(150)
        assert scenario.snapshot().is_connected()

    def test_active_views_symmetric_after_join(self):
        scenario = hyparview_scenario(150)
        assert_symmetric(scenario)

    def test_symmetry_and_connectivity_survive_stabilization(self):
        scenario = hyparview_scenario(150)
        scenario.stabilize()
        assert_symmetric(scenario)
        assert scenario.snapshot().is_connected()

    def test_most_views_full_after_stabilization(self):
        scenario = hyparview_scenario(200)
        scenario.stabilize()
        capacity = scenario.params.hyparview.active_view_capacity
        full = sum(
            1
            for node_id in scenario.node_ids
            if len(scenario.membership(node_id).active) == capacity
        )
        assert full / scenario.params.n > 0.9

    def test_passive_views_populated(self):
        scenario = hyparview_scenario(200)
        scenario.stabilize()
        sizes = [len(scenario.membership(node_id).passive) for node_id in scenario.node_ids]
        assert sum(sizes) / len(sizes) > scenario.params.hyparview.passive_view_capacity * 0.5

    def test_in_degree_concentrated_at_capacity(self):
        """Figure 5: almost all nodes are known by active-view-size others."""
        scenario = hyparview_scenario(200)
        scenario.stabilize()
        snapshot = scenario.snapshot()
        capacity = scenario.params.hyparview.active_view_capacity
        histogram = snapshot.in_degree_histogram()
        at_capacity = histogram.get(capacity, 0)
        assert at_capacity / scenario.params.n > 0.75

    def test_low_clustering_coefficient(self):
        """Table 1: HyParView clustering is far below view_size/n density."""
        scenario = hyparview_scenario(200)
        scenario.stabilize()
        assert scenario.snapshot().average_clustering() < 0.1


class TestBroadcastOverOverlay:
    def test_flood_reaches_everyone_in_stable_overlay(self):
        scenario = hyparview_scenario(150)
        scenario.stabilize()
        for summary in scenario.send_broadcasts(5):
            assert summary.reliability == 1.0

    def test_flood_is_deterministic_in_stable_overlay(self):
        """Same overlay, same origin twice: identical delivery sets."""
        scenario = hyparview_scenario(100)
        scenario.stabilize()
        origin = scenario.alive_ids()[0]
        first = scenario.send_broadcast(origin=origin)
        second = scenario.send_broadcast(origin=origin)
        assert first.delivered == second.delivered
        assert first.max_hops == second.max_hops


@pytest.mark.slow
class TestCatastrophicFailureRepair:
    def test_repair_after_60_percent(self):
        scenario = hyparview_scenario(250, cycles=20)
        scenario.stabilize()
        scenario.fail_fraction(0.6)
        series = [s.reliability for s in scenario.send_paced_broadcasts(40)]
        tail = series[-10:]
        assert sum(tail) / len(tail) > 0.95

    def test_views_purged_of_dead_nodes_after_repair(self):
        scenario = hyparview_scenario(250, cycles=20)
        scenario.stabilize()
        scenario.fail_fraction(0.5)
        scenario.send_paced_broadcasts(30)
        scenario.run_cycles(3)
        alive = set(scenario.alive_ids())
        dead_refs = 0
        for node_id in alive:
            dead_refs += sum(
                1
                for peer in scenario.membership(node_id).active_members()
                if peer not in alive
            )
        assert dead_refs == 0

    def test_symmetry_restored_after_repair(self):
        scenario = hyparview_scenario(250, cycles=20)
        scenario.stabilize()
        scenario.fail_fraction(0.5)
        scenario.send_paced_broadcasts(30)
        scenario.run_cycles(2)
        assert_symmetric(scenario)

    def test_healing_with_membership_cycles_after_90_percent(self):
        scenario = hyparview_scenario(300, cycles=20)
        scenario.stabilize()
        scenario.fail_fraction(0.9)
        scenario.run_cycles(4)  # the paper's headline: ~4 rounds suffice
        series = [s.reliability for s in scenario.send_broadcasts(10)]
        assert sum(series) / len(series) > 0.9
