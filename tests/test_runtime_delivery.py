"""The unified delivery surface: counters, event-driven waits, streams."""

from __future__ import annotations

import asyncio

from repro.common.ids import MessageId, NodeId
from repro.runtime.delivery import DeliveryLog, DeliveryRecord


def run(coroutine, timeout=10.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


def record(node_port: int, message_seq: int, *, incarnation: int = 0, at: float = 0.0):
    return DeliveryRecord(
        node=NodeId("127.0.0.1", node_port),
        incarnation=incarnation,
        message_id=MessageId(NodeId("127.0.0.1", 9000), message_seq),
        payload=f"m{message_seq}",
        at=at,
    )


class TestCounters:
    def test_count_is_distinct_nodes(self):
        log = DeliveryLog()
        log.append(record(1, 7))
        log.append(record(2, 7))
        log.append(record(2, 7))  # duplicate delivery on the same node
        assert log.count(record(1, 7).message_id) == 2
        assert log.total() == 3
        assert log.count(record(1, 99).message_id) == 0

    def test_records_for_filters_node_and_incarnation(self):
        log = DeliveryLog()
        log.append(record(1, 7, incarnation=0))
        log.append(record(1, 8, incarnation=1))
        log.append(record(2, 7, incarnation=0))
        node = NodeId("127.0.0.1", 1)
        assert len(log.records_for(node)) == 2
        assert [r.incarnation for r in log.records_for(node, incarnation=1)] == [1]
        assert len(log.records_for(incarnation=0)) == 2


class TestWaitCount:
    def test_resolves_immediately_when_already_met(self):
        async def scenario():
            log = DeliveryLog()
            log.append(record(1, 7))
            assert await log.wait_count(record(1, 7).message_id, 1) == 1

        run(scenario())

    def test_resolves_when_threshold_crossed(self):
        async def scenario():
            log = DeliveryLog()
            message_id = record(1, 7).message_id

            async def feed():
                await asyncio.sleep(0.01)
                log.append(record(1, 7))
                log.append(record(2, 7))

            feeder = asyncio.create_task(feed())
            assert await log.wait_count(message_id, 2, timeout=5.0) == 2
            await feeder

        run(scenario())

    def test_timeout_returns_current_count(self):
        async def scenario():
            log = DeliveryLog()
            log.append(record(1, 7))
            count = await log.wait_count(record(1, 7).message_id, 5, timeout=0.05)
            assert count == 1
            assert log._waiters == []  # no leaked waiters after timeout

        run(scenario())


class TestStreams:
    def test_stream_yields_records_in_order(self):
        async def scenario():
            log = DeliveryLog()
            log.append(record(1, 1))  # before subscribe: not replayed
            stream = log.subscribe()
            log.append(record(1, 2))
            log.append(record(2, 3))
            first = await stream.get()
            second = await stream.get()
            assert (first.payload, second.payload) == ("m2", "m3")
            stream.close()

        run(scenario())

    def test_close_ends_async_iteration(self):
        async def scenario():
            log = DeliveryLog()
            stream = log.subscribe()
            log.append(record(1, 1))
            stream.close()
            seen = [item.payload async for item in stream]
            assert seen == ["m1"]
            assert await stream.get() is None
            # A closed stream no longer receives appends.
            log.append(record(1, 2))
            assert await stream.get() is None

        run(scenario())

    def test_independent_subscribers(self):
        async def scenario():
            log = DeliveryLog()
            a = log.subscribe()
            b = log.subscribe()
            log.append(record(1, 1))
            assert (await a.get()).payload == "m1"
            assert (await b.get()).payload == "m1"
            a.close()
            log.append(record(1, 2))
            assert (await b.get()).payload == "m2"
            b.close()

        run(scenario())
