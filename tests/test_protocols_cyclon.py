"""Tests for the Cyclon baseline (aged view, oldest-peer shuffle, joins)."""

import random

import pytest

from repro.common.errors import ProtocolError
from repro.common.ids import NodeId
from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario
from repro.protocols.cyclon import AgedView


def nid(i):
    return NodeId(f"n{i}", 1)


class TestAgedView:
    def test_add_remove_age(self):
        view = AgedView(3)
        view.add(nid(1), age=2)
        assert nid(1) in view
        assert view.age_of(nid(1)) == 2
        assert view.remove(nid(1)) == 2
        assert nid(1) not in view

    def test_duplicate_and_overflow_rejected(self):
        view = AgedView(1)
        view.add(nid(1))
        with pytest.raises(ProtocolError):
            view.add(nid(1))
        with pytest.raises(ProtocolError):
            view.add(nid(2))

    def test_age_of_missing_raises(self):
        with pytest.raises(ProtocolError):
            AgedView(2).age_of(nid(1))

    def test_increment_ages(self):
        view = AgedView(3)
        view.add(nid(1), age=0)
        view.add(nid(2), age=5)
        view.increment_ages()
        assert view.age_of(nid(1)) == 1
        assert view.age_of(nid(2)) == 6

    def test_oldest(self):
        view = AgedView(3)
        assert view.oldest() is None
        view.add(nid(1), age=1)
        view.add(nid(2), age=9)
        view.add(nid(3), age=4)
        assert view.oldest() == nid(2)

    def test_oldest_tie_break_deterministic(self):
        view = AgedView(3)
        view.add(nid(2), age=5)
        view.add(nid(1), age=5)
        assert view.oldest() == view.oldest()

    def test_sampling(self):
        view = AgedView(10)
        for i in range(6):
            view.add(nid(i), age=i)
        rng = random.Random(0)
        entries = view.sample_entries(rng, 3)
        assert len(entries) == 3
        assert all(view.age_of(node) == age for node, age in entries)
        members = view.sample_members(rng, 99, exclude=(nid(0),))
        assert nid(0) not in members
        assert len(members) == 5


def cyclon_scenario(n=150, cycles=15, seed=42):
    params = ExperimentParams.scaled(n, seed=seed, stabilization_cycles=cycles)
    scenario = Scenario("cyclon", params)
    scenario.build_overlay()
    return scenario


class TestJoin:
    def test_join_through_self_rejected(self, world):
        _, a = world.cyclon()
        with pytest.raises(ProtocolError):
            a.join(a.address)

    def test_bootstrap_pair(self, world):
        (_, a), (_, b) = world.cyclon(), world.cyclon()
        b.join(a.address)
        world.drain()
        assert b.address in a.view
        assert a.address in b.view

    def test_views_fill_during_sequential_joins(self):
        scenario = cyclon_scenario(100)
        sizes = [len(scenario.membership(n).view) for n in scenario.node_ids]
        view_size = scenario.params.cyclon.view_size
        assert sum(sizes) / len(sizes) > 0.8 * view_size

    def test_overlay_connected_after_joins(self):
        scenario = cyclon_scenario(100)
        assert scenario.snapshot().is_connected()


class TestShuffle:
    def test_shuffle_ages_entries(self, world):
        (_, a), (_, b) = world.cyclon(), world.cyclon()
        b.join(a.address)
        world.drain()
        age_before = a.view.age_of(b.address) if b.address in a.view else None
        a.cycle()
        world.drain()
        # b was the oldest (only) entry: it was removed and has answered,
        # so a's view now holds a fresh entry for b.
        assert b.address in a.view or age_before is not None

    def test_shuffle_removes_unresponsive_oldest(self, world):
        (na, a), (nb, b) = world.cyclon(), world.cyclon()
        b.join(a.address)
        world.drain()
        world.network.fail(nb.node_id)
        a.cycle()
        world.drain()
        assert b.address not in a.view  # removed up front; no reply re-adds

    def test_shuffle_exchange_preserves_capacity(self):
        scenario = cyclon_scenario(80, cycles=10)
        scenario.run_cycles(10)
        for node_id in scenario.node_ids:
            view = scenario.membership(node_id).view
            assert len(view) <= view.capacity

    def test_no_self_entries_ever(self):
        scenario = cyclon_scenario(80, cycles=10)
        scenario.run_cycles(10)
        for node_id in scenario.node_ids:
            assert node_id not in scenario.membership(node_id).view

    def test_view_sizes_stay_full_during_stabilization(self):
        scenario = cyclon_scenario(100, cycles=10)
        scenario.run_cycles(10)
        view_size = scenario.params.cyclon.view_size
        sizes = [len(scenario.membership(n).view) for n in scenario.node_ids]
        assert min(sizes) >= view_size - 2

    def test_connectivity_maintained_through_cycles(self):
        scenario = cyclon_scenario(100, cycles=10)
        scenario.run_cycles(10)
        assert scenario.snapshot().largest_component_fraction() > 0.99

    def test_ages_bounded_by_shuffle_refresh(self):
        """The oldest-peer policy keeps entry ages from growing without
        bound.  An entry handed over mid-round is aged by both holders in
        the same cycle, so the bound is ~2x the cycle count, not exact."""
        scenario = cyclon_scenario(60, cycles=8)
        scenario.run_cycles(8)
        for node_id in scenario.node_ids:
            view = scenario.membership(node_id).view
            for _node, age in view.entries():
                assert age <= 2 * 8


class TestPeerSampling:
    def test_gossip_targets_sample_from_view(self, world):
        protocols = [world.cyclon()[1] for _ in range(5)]
        world.join_chain(protocols)
        a = protocols[0]
        targets = a.gossip_targets(3)
        assert len(targets) <= 3
        assert set(targets) <= set(a.view.members())

    def test_plain_cyclon_ignores_failure_reports(self, world):
        (_, a), (_, b) = world.cyclon(), world.cyclon()
        b.join(a.address)
        world.drain()
        a.report_failure(b.address)
        assert b.address in a.view  # deliberately not removed

    def test_out_neighbors_match_view(self, world):
        (_, a), (_, b) = world.cyclon(), world.cyclon()
        b.join(a.address)
        world.drain()
        assert a.out_neighbors() == a.view.members()
