"""Service-layer protection primitives: token bucket, breaker, peer guard.

All clock-agnostic — time is a hand-cranked float, no event loop needed.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import NodeId
from repro.service.limits import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    PeerGuard,
    TokenBucket,
    TopicBuckets,
)


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert bucket.denied == 1

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        assert bucket.allow(0.0) and bucket.allow(0.0)
        assert not bucket.allow(0.1)  # only 0.2 tokens back
        assert bucket.allow(0.6)  # 1.2 tokens accumulated
        assert bucket.tokens(0.6) == pytest.approx(0.2)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3)
        assert bucket.tokens(0.0) == 3
        bucket.allow(0.0)
        assert bucket.tokens(1000.0) == 3

    def test_time_going_backwards_is_tolerated(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.allow(5.0)
        assert not bucket.allow(1.0)  # no refill, but no crash either

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ConfigurationError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestTopicBuckets:
    def test_hot_topic_exhausts_only_its_own_budget(self):
        buckets = TopicBuckets(rate=1.0, burst=2)
        assert buckets.allow("hot", 0.0)
        assert buckets.allow("hot", 0.0)
        assert not buckets.allow("hot", 0.0)
        assert buckets.allow("cold", 0.0)  # unaffected by hot's spend
        assert buckets.denied() == 1

    def test_buckets_are_lazy_and_shared_per_key(self):
        buckets = TopicBuckets(rate=1.0, burst=1)
        assert buckets._buckets == {}
        first = buckets.bucket("a")
        assert buckets.bucket("a") is first
        assert set(buckets._buckets) == {"a"}

    def test_refill_is_per_topic(self):
        buckets = TopicBuckets(rate=2.0, burst=1)
        assert buckets.allow("a", 0.0)
        assert not buckets.allow("a", 0.1)
        assert buckets.allow("a", 1.0)

    def test_validation_is_eager(self):
        with pytest.raises(ConfigurationError, match="rate"):
            TopicBuckets(rate=0.0, burst=1)
        with pytest.raises(ConfigurationError, match="burst"):
            TopicBuckets(rate=1.0, burst=0.0)


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="threshold"):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError, match="recovery"):
            BreakerConfig(recovery_timeout=0.0)
        with pytest.raises(ConfigurationError, match="successes"):
            BreakerConfig(half_open_successes=0)
        with pytest.raises(ConfigurationError, match="probes"):
            BreakerConfig(half_open_max_probes=0)


class TestCircuitBreaker:
    CONFIG = BreakerConfig(
        failure_threshold=3,
        recovery_timeout=1.0,
        half_open_successes=2,
        half_open_max_probes=2,
    )

    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(self.CONFIG)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state == CLOSED
        breaker.record_failure(0.2)
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert not breaker.allow(0.3)

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(self.CONFIG)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state == CLOSED

    def test_half_open_after_recovery_timeout(self):
        breaker = CircuitBreaker(self.CONFIG)
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert not breaker.allow(1.0)  # 0.8s served of 1.0
        assert breaker.allow(1.3)  # first probe admitted
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_budget_is_bounded(self):
        breaker = CircuitBreaker(self.CONFIG)
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.allow(1.5)
        assert breaker.allow(1.5)  # second probe (max_probes=2)
        assert not breaker.allow(1.5)  # budget exhausted, undecided

    def test_half_open_successes_close(self):
        breaker = CircuitBreaker(self.CONFIG)
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.allow(1.5)
        breaker.record_success(1.6)
        assert breaker.state == HALF_OPEN  # needs 2 successes
        assert breaker.allow(1.6)
        breaker.record_success(1.7)
        assert breaker.state == CLOSED
        assert breaker.trips == 1

    def test_half_open_failure_retrips(self):
        breaker = CircuitBreaker(self.CONFIG)
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.allow(1.5)
        breaker.record_failure(1.6)
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow(1.7)  # the sentence restarts

    def test_stray_failures_while_open_do_not_extend(self):
        breaker = CircuitBreaker(self.CONFIG)
        for t in (0.0, 0.1, 0.2):
            breaker.record_failure(t)
        breaker.record_failure(0.9)  # in-flight send racing the trip
        assert breaker.trips == 1
        assert breaker.allow(1.3)  # timeout measured from the first trip


class _StubTransport:
    """Just the surface PeerGuard touches."""

    def __init__(self) -> None:
        self.send_guard = None
        self.send_observer = None


class TestPeerGuard:
    def test_installs_and_detaches_hooks(self):
        transport = _StubTransport()
        guard = PeerGuard(transport, time_fn=lambda: 0.0)
        assert transport.send_guard is not None
        assert transport.send_observer is not None
        guard.detach()
        assert transport.send_guard is None
        assert transport.send_observer is None

    def test_detach_leaves_foreign_hooks_alone(self):
        transport = _StubTransport()
        guard = PeerGuard(transport, time_fn=lambda: 0.0)
        other = lambda dst: True  # noqa: E731
        transport.send_guard = other
        guard.detach()
        assert transport.send_guard is other

    def test_failures_trip_one_peer_only(self):
        transport = _StubTransport()
        clock = [0.0]
        guard = PeerGuard(
            transport,
            config=BreakerConfig(failure_threshold=2, recovery_timeout=1.0),
            time_fn=lambda: clock[0],
        )
        bad = NodeId("127.0.0.1", 1)
        good = NodeId("127.0.0.1", 2)
        transport.send_observer(bad, False)
        transport.send_observer(bad, False)
        transport.send_observer(good, True)
        assert not transport.send_guard(bad)
        assert transport.send_guard(good)
        assert guard.trips() == 1
        assert guard.open_peers() == [bad]
        assert guard.rejected == 1

    def test_recovery_through_half_open(self):
        transport = _StubTransport()
        clock = [0.0]
        guard = PeerGuard(
            transport,
            config=BreakerConfig(
                failure_threshold=1, recovery_timeout=0.5, half_open_successes=1
            ),
            time_fn=lambda: clock[0],
        )
        peer = NodeId("127.0.0.1", 1)
        transport.send_observer(peer, False)
        assert not transport.send_guard(peer)
        clock[0] = 1.0
        assert transport.send_guard(peer)  # half-open probe
        transport.send_observer(peer, True)
        assert guard.breaker(peer).state == CLOSED
        assert guard.open_peers() == []
