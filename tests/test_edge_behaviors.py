"""Behavioural tests for less-travelled paths: the flood resend extension,
corrupt wire frames, Scamp's indirection factor, the Host bundle."""

import asyncio
import json

from repro.core.config import HyParViewConfig
from repro.gossip.flood import FloodBroadcast
from repro.protocols.scamp import ScampForwardedSubscription, ScampSubscribe


SMALL = HyParViewConfig(active_view_capacity=2, passive_view_capacity=6)


class TestFloodResendOnRepair:
    def test_payload_resent_to_promoted_replacement(self, world):
        # a -- b (active); c sits in a's passive view.  b dies; a's
        # broadcast fails towards b, repair promotes c, and the resend
        # extension pushes the *same payload* to c.
        (na, a), (nb, b), (nc, c) = world.hyparview_many(3, config=SMALL)
        layer_a = na.wire(
            "gossip",
            FloodBroadcast(
                na.host("gossip"), a, world.tracker, resend_on_repair=True, resend_delay=0.05
            ),
        )
        layer_c = world.with_flood(nc, c)
        world.join_chain([a, b])
        a._add_to_passive(c.address)
        # Crash b and broadcast before the watch notification lands, so the
        # failure is detected by the send itself.
        world.network.fail(nb.node_id)
        message_id = layer_a.broadcast("survivor-payload")
        world.drain()
        assert c.address in a.active  # repair promoted c
        assert layer_c.has_delivered(message_id)  # resend delivered payload

    def test_without_resend_payload_is_lost(self, world):
        (na, a), (nb, b), (nc, c) = world.hyparview_many(3, config=SMALL)
        layer_a = world.with_flood(na, a)
        layer_c = world.with_flood(nc, c)
        world.join_chain([a, b])
        a._add_to_passive(c.address)
        world.network.fail(nb.node_id)
        message_id = layer_a.broadcast("lost-payload")
        world.drain()
        assert c.address in a.active  # repair still happens
        assert not layer_c.has_delivered(message_id)  # but the message is gone


class TestScampIndirection:
    def test_contact_creates_view_plus_c_copies(self, world):
        protocols = [world.scamp()[1] for _ in range(8)]
        world.join_chain(protocols)
        contact = protocols[0]
        view_size = len(contact.partial_view)
        world.network.trace = __import__(
            "repro.sim.trace", fromlist=["EventTrace"]
        ).EventTrace()
        contact.handle_subscribe(ScampSubscribe(protocols[-1].address))
        # Count only the copies the contact itself fanned out (trace starts
        # empty, the cascade adds more forwards downstream).
        first_wave = [
            record
            for record in world.network.trace.of_kind("send")
            if record.message_type == "ScampForwardedSubscription"
            and record.src == contact.address
        ]
        assert len(first_wave) == view_size + contact.config.c

    def test_forwarding_hop_cap_integrates_subscription(self, world):
        (_, a), (_, b) = world.scamp(), world.scamp()
        b.join(a.address)
        world.drain()
        # A forwarded subscription arriving at the cap is kept, not lost.
        stranger = world.scamp()[1]
        a.handle_forwarded_subscription(
            ScampForwardedSubscription(stranger.address, a.config.max_forward_hops)
        )
        assert stranger.address in a.partial_view


class TestHostBundle:
    def test_host_passthroughs(self, world):
        node, protocol = world.hyparview()
        host = node.host("probe-test")
        other, _ = world.hyparview()
        assert host.now() == world.engine.now
        fired = []
        host.schedule(0.5, lambda: fired.append(host.now()))
        results = []
        host.probe(other.node_id, lambda peer, ok: results.append((peer, ok)))
        downs = []
        host.watch(other.node_id, downs.append)
        world.drain()
        assert fired == [0.5]
        assert results == [(other.node_id, True)]
        host.unwatch(other.node_id)
        world.network.fail(other.node_id)
        world.drain()
        assert downs == []


class TestRuntimeCorruptFrames:
    def test_corrupt_and_unknown_frames_are_dropped_not_fatal(self):
        async def scenario():
            from repro.runtime.node import RuntimeNode

            node = RuntimeNode(config=HyParViewConfig(neighbor_request_timeout=1.0))
            identity = await node.start()
            reader, writer = await asyncio.open_connection(identity.host, identity.port)
            writer.write(json.dumps({"hello": ["attacker", 1]}).encode() + b"\n")
            writer.write(b"this is not json\n")
            writer.write(json.dumps({"type": "no.such", "fields": {}}).encode() + b"\n")
            writer.write(json.dumps({"weird": 1}).encode() + b"\n")
            # A valid frame after the garbage still gets through.
            from repro.common.ids import NodeId
            from repro.common.messages import encode_message
            from repro.core.messages import Join

            writer.write(
                json.dumps(encode_message(Join(NodeId("attacker", 1)))).encode() + b"\n"
            )
            await writer.drain()
            await asyncio.sleep(0.3)
            assert node.membership.stats.joins_received == 1
            writer.close()
            await node.stop()

        asyncio.run(asyncio.wait_for(scenario(), 15.0))

    def test_connection_without_hello_is_rejected(self):
        async def scenario():
            from repro.runtime.node import RuntimeNode

            node = RuntimeNode(config=HyParViewConfig(neighbor_request_timeout=1.0))
            identity = await node.start()
            reader, writer = await asyncio.open_connection(identity.host, identity.port)
            writer.write(b"garbage-first-line\n")
            await writer.drain()
            data = await reader.read()  # server closes on us
            assert data == b""
            await node.stop()

        asyncio.run(asyncio.wait_for(scenario(), 15.0))
