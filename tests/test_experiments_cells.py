"""Cell sharding, snapshot cache and freeze/thaw determinism tests.

The orchestrator's contract: ``BENCH_*.json`` artifacts are a pure
function of ``(root_seed, scenario, tier, overrides)`` — byte-identical
across worker counts, cell splitting on/off, snapshot cache on/off, and
identical to the monolithic single-process reference run.
"""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.experiments.failures import stabilized_scenario
from repro.experiments.params import ExperimentParams
from repro.experiments.registry import get_scenario
from repro.experiments.reporting import encode_artifact
from repro.experiments.runner import (
    SweepTimings,
    build_chunks,
    build_units,
    run_scenarios,
    write_artifacts,
)
from repro.experiments.scenario import Scenario
from repro.experiments.snapshots import SnapshotCache

#: The headline grid scenario (protocol x fraction cells) at toy scale.
GRID_ID = "fig2_reliability"
TINY = dict(n=32, messages=2)


def _artifact_bytes(runs) -> dict[str, str]:
    return {scenario_id: encode_artifact(run.artifact()) for scenario_id, run in runs.items()}


def _edges(scenario: Scenario) -> dict:
    snapshot = scenario.snapshot()
    return {node: snapshot.out_neighbors(node) for node in snapshot.nodes()}


class TestCellEnumeration:
    def test_grid_scenario_expands_to_protocol_x_fraction(self):
        spec = get_scenario(GRID_ID)
        assert spec.supports_cells
        units = build_units([GRID_ID], "smoke", **TINY)
        smoke = spec.tier("smoke")
        protocols = 4  # PAPER_PROTOCOLS
        fractions = len(smoke.extra["fractions"])
        assert len(units) == protocols * fractions
        assert all(unit.cell is not None for unit in units)
        assert len({unit.cell for unit in units}) == len(units)

    def test_cells_off_collapses_to_one_unit_per_replicate(self):
        units = build_units([GRID_ID], "smoke", cells=False, **TINY)
        assert len(units) == 1
        assert units[0].cell is None

    def test_monolithic_scenarios_unaffected_by_cells_flag(self):
        for flag in (True, False):
            units = build_units(["fig1_hyparview_reference"], "smoke", cells=flag, **TINY)
            assert len(units) == 1
            assert units[0].cell is None

    def test_merge_reproduces_monolithic_run(self):
        """Cells + merge executed by hand equal spec.run exactly."""
        spec = get_scenario(GRID_ID)
        units = build_units([GRID_ID], "smoke", **TINY)
        _, context = units[0].resolve()
        cell_results = {
            unit.cell: spec.run_cell(unit.resolve()[1], unit.cell) for unit in units
        }
        merged = spec.merge_cells(context, cell_results)
        assert merged == spec.run(context)


class TestAffinityChunks:
    def test_chunks_group_cells_by_protocol(self):
        units = build_units([GRID_ID], "smoke", **TINY)
        chunks = build_chunks(units, 4)
        assert len(chunks) == 4  # one per protocol
        for chunk in chunks:
            assert len({unit.cell[0] for unit in chunk}) == 1

    def test_chunks_split_when_fewer_than_workers(self):
        units = build_units([GRID_ID], "smoke", **TINY)  # 4 affinity groups
        for workers in (5, 6, 8, 16):
            chunks = build_chunks(units, workers)
            # No worker may idle while another runs a multi-cell chain.
            assert len(chunks) >= min(workers, len(units))

    def test_chunks_cover_all_units_exactly_once(self):
        units = build_units([GRID_ID, "churn", "fig1a_cyclon_fanout"], "smoke", **TINY)
        chunks = build_chunks(units, 6)
        flattened = [unit for chunk in chunks for unit in chunk]
        assert sorted(map(repr, flattened)) == sorted(map(repr, units))

    def test_fanout_cells_form_one_affinity_group(self):
        units = build_units(["fig1a_cyclon_fanout"], "smoke", **TINY)
        assert len(build_chunks(units, 1)) == 1  # all cells share one base


class TestShardingDeterminism:
    def test_parallel_equals_serial_for_grid_scenario(self, tmp_path):
        serial = run_scenarios([GRID_ID], "smoke", workers=1, **TINY)
        parallel = run_scenarios([GRID_ID], "smoke", workers=4, **TINY)
        a = write_artifacts(serial, tmp_path / "serial")
        b = write_artifacts(parallel, tmp_path / "parallel")
        assert [p.read_bytes() for p in a] == [p.read_bytes() for p in b]

    def test_cells_on_equals_cells_off(self):
        split = run_scenarios([GRID_ID], "smoke", workers=2, cells=True, **TINY)
        whole = run_scenarios([GRID_ID], "smoke", workers=2, cells=False, **TINY)
        assert _artifact_bytes(split) == _artifact_bytes(whole)

    def test_cached_equals_uncached(self):
        cached = run_scenarios([GRID_ID], "smoke", workers=2, snapshot_cache=True, **TINY)
        uncached = run_scenarios(
            [GRID_ID], "smoke", workers=2, snapshot_cache=False, **TINY
        )
        assert _artifact_bytes(cached) == _artifact_bytes(uncached)

    def test_all_modes_agree_for_fanout_and_healing(self):
        """A second shape of grid (fanout cells, healing cells) across the
        full mode matrix."""
        ids = ["fig1a_cyclon_fanout", "fig4_healing"]
        reference = run_scenarios(ids, "smoke", workers=1, cells=False,
                                  snapshot_cache=False, **TINY)
        for workers, cells, cache in [(1, True, True), (3, True, True), (2, True, False)]:
            candidate = run_scenarios(ids, "smoke", workers=workers, cells=cells,
                                      snapshot_cache=cache, **TINY)
            assert _artifact_bytes(candidate) == _artifact_bytes(reference), (
                workers, cells, cache,
            )


class TestTimings:
    def test_timings_collected_but_artifacts_clean(self, tmp_path):
        timings = SweepTimings()
        runs = run_scenarios([GRID_ID], "smoke", workers=1, timings=timings, **TINY)
        assert timings.scenario_units[GRID_ID] == 8  # 4 protocols x 2 fractions
        assert timings.scenario_seconds[GRID_ID] > 0.0
        assert timings.wall_seconds > 0.0
        text = encode_artifact(runs[GRID_ID].artifact())
        for forbidden in ("elapsed", "seconds", "duration", "wall"):
            assert forbidden not in text.lower()


class TestSnapshotCache:
    def test_checkouts_are_private_copies(self):
        params = ExperimentParams.scaled(24, seed=5, stabilization_cycles=3)
        cache = SnapshotCache()
        first = cache.checkout("hyparview", params)
        second = cache.checkout("hyparview", params)
        assert first is not second
        first.fail_fraction(0.5)
        # Mutating one checkout must not leak into the next.
        third = cache.checkout("hyparview", params)
        assert len(third.alive_ids()) == params.n
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 2

    def test_distinct_params_are_distinct_entries(self):
        cache = SnapshotCache()
        a = ExperimentParams.scaled(24, seed=1, stabilization_cycles=3)
        b = ExperimentParams.scaled(24, seed=2, stabilization_cycles=3)
        cache.checkout("hyparview", a)
        cache.checkout("hyparview", b)
        assert cache.stats()["misses"] == 2

    def test_lru_eviction(self):
        cache = SnapshotCache(capacity=1)
        a = ExperimentParams.scaled(24, seed=1, stabilization_cycles=3)
        b = ExperimentParams.scaled(24, seed=2, stabilization_cycles=3)
        cache.checkout("hyparview", a)
        cache.checkout("hyparview", b)
        cache.checkout("hyparview", a)  # evicted, rebuilt
        stats = cache.stats()
        assert stats["misses"] == 3
        assert stats["evictions"] == 2
        assert len(cache) == 1

    def test_hit_and_miss_hand_out_identical_state(self):
        params = ExperimentParams.scaled(24, seed=9, stabilization_cycles=3)
        cache = SnapshotCache()
        miss = cache.checkout("cyclon", params)
        hit = cache.checkout("cyclon", params)
        assert _edges(miss) == _edges(hit)


class TestFreezeThaw:
    def test_clone_equals_thaw_of_freeze(self):
        params = ExperimentParams.scaled(24, seed=3, stabilization_cycles=3)
        base = stabilized_scenario("hyparview", params)
        frozen = base.freeze()
        a, b = Scenario.thaw(frozen), base.clone()
        assert _edges(a) == _edges(b)
        # Downstream randomness matches too: same victims, same traffic.
        assert a.fail_fraction(0.5) == b.fail_fraction(0.5)
        sa = [s.reliability for s in a.send_broadcasts(2)]
        sb = [s.reliability for s in b.send_broadcasts(2)]
        assert sa == sb

    def test_freeze_with_live_pending_events_rejected(self):
        params = ExperimentParams.scaled(16, seed=3, stabilization_cycles=2)
        scenario = stabilized_scenario("hyparview", params)
        scenario.engine.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError, match="pending"):
            scenario.freeze()

    def test_cancelled_timers_do_not_block_freeze(self):
        """The live_pending fix: a heap of lazily-cancelled timers is not
        pending work and must not block cloning (it used to)."""
        params = ExperimentParams.scaled(16, seed=3, stabilization_cycles=2)
        scenario = stabilized_scenario("hyparview", params)
        handles = [scenario.engine.schedule(60.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        assert scenario.engine.pending > 0
        clone = scenario.clone()  # would raise before the fix
        assert clone.engine.live_pending == 0


class TestAblationCells:
    """The four ablations expose their per-point sweeps as cells."""

    ABLATIONS = {
        "ablation_passive_size": 2,   # passive_sizes (3, 8) at smoke tier
        "ablation_shuffle_ttl": 2,    # ttls (1, 6)
        "ablation_flood_resend": 2,   # resend False/True
        "ablation_plumtree": 2,       # flood vs tree layer
    }

    def test_every_ablation_supports_cells(self):
        for scenario_id, expected in self.ABLATIONS.items():
            spec = get_scenario(scenario_id)
            assert spec.supports_cells, scenario_id
            units = build_units([scenario_id], "smoke", **TINY)
            assert len(units) == expected, scenario_id
            assert all(unit.cell is not None for unit in units)

    @pytest.mark.parametrize("scenario_id", sorted(ABLATIONS))
    def test_merge_reproduces_monolithic_run(self, scenario_id):
        spec = get_scenario(scenario_id)
        units = build_units([scenario_id], "smoke", **TINY)
        _, context = units[0].resolve()
        cell_results = {
            unit.cell: spec.run_cell(unit.resolve()[1], unit.cell) for unit in units
        }
        merged = spec.merge_cells(context, cell_results)
        assert merged == spec.run(context)

    def test_resend_cells_share_one_base(self):
        units = build_units(["ablation_flood_resend"], "smoke", **TINY)
        assert len(build_chunks(units, 1)) == 1  # one affinity group

    def test_ablation_artifacts_identical_across_modes(self):
        ids = ["ablation_passive_size", "ablation_flood_resend"]
        reference = run_scenarios(ids, "smoke", workers=1, cells=False,
                                  snapshot_cache=False, **TINY)
        for workers, cells, cache in [(1, True, True), (2, True, True)]:
            candidate = run_scenarios(ids, "smoke", workers=workers, cells=cells,
                                      snapshot_cache=cache, **TINY)
            assert _artifact_bytes(candidate) == _artifact_bytes(reference), (
                workers, cells, cache,
            )


class TestTimingsArtifacts:
    def test_timings_artifact_schema_and_separation(self, tmp_path):
        from repro.experiments.reporting import load_timings, timings_filename
        from repro.experiments.runner import write_timings_artifacts

        timings = SweepTimings()
        run_scenarios([GRID_ID], "smoke", workers=1, timings=timings, **TINY)
        paths = write_timings_artifacts(timings, tmp_path, tier="smoke", workers=1)
        assert [p.name for p in paths] == [timings_filename(GRID_ID)]
        record = load_timings(paths[0])
        assert record["scenario"] == GRID_ID
        assert record["tier"] == "smoke"
        assert record["workers"] == 1
        assert record["totals"]["units"] == 8
        assert record["totals"]["worker_seconds"] > 0.0
        # Kernel throughput is folded in per unit and in the totals.
        assert record["totals"]["events"] > 0
        assert record["totals"]["events_per_second"] > 0
        for unit in record["units"]:
            assert unit["events"] > 0
            assert unit["elapsed_seconds"] > 0.0
        # Layout is stable: units sorted by (replicate, cell), not by
        # completion order.
        keys = [(u["replicate"], u["cell"]) for u in record["units"]]
        assert keys == sorted(keys)
        # TIMINGS files never collide with the deterministic BENCH family.
        assert not paths[0].name.startswith("BENCH_")

    def test_unit_outcomes_report_events(self):
        timings = SweepTimings()
        run_scenarios(["fig1_hyparview_reference"], "smoke", workers=1,
                      timings=timings, **TINY)
        records = timings.unit_records["fig1_hyparview_reference"]
        assert len(records) == 1
        assert records[0]["events"] > 0
        assert records[0]["cell"] is None
