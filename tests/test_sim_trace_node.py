"""Tests for event tracing and the SimNode protocol container."""

from dataclasses import dataclass

import pytest

from repro.common.errors import SimulationError
from repro.common.ids import NodeId
from repro.common.messages import Message, register_message
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import SimNode
from repro.sim.trace import EventTrace


@register_message("test.alpha")
@dataclass(frozen=True, slots=True)
class Alpha(Message):
    value: int


@register_message("test.beta")
@dataclass(frozen=True, slots=True)
class Beta(Message):
    value: int


class TestEventTrace:
    def test_record_and_filter(self):
        trace = EventTrace()
        a, b = NodeId("a", 1), NodeId("b", 1)
        trace.record(0.0, "send", a, b, Alpha(1))
        trace.record(0.1, "deliver", a, b, Alpha(1))
        trace.record(0.2, "send", b, a, Beta(2))
        assert len(trace) == 3
        assert len(trace.of_kind("send")) == 2
        assert len(trace.messages_of_type("Alpha")) == 2
        assert trace.counts_by_type() == {"Alpha": 1, "Beta": 1}

    def test_bounded_memory(self):
        trace = EventTrace(limit=10)
        a = NodeId("a", 1)
        for i in range(25):
            trace.record(float(i), "send", a, a, Alpha(i))
        assert len(trace) <= 10
        assert trace.dropped_records > 0
        # newest records survive
        assert list(trace)[-1].time == 24.0

    def test_clear(self):
        trace = EventTrace()
        trace.record(0.0, "send", None, None, None)
        trace.clear()
        assert len(trace) == 0

    def test_tiny_limits_stay_bounded(self):
        # limit < 2 used to floor-divide the keep count to zero, and
        # ``[-0:]`` keeps *everything* — the buffer grew without bound
        # while claiming to be capped.
        for limit in (1, 2, 3):
            trace = EventTrace(limit=limit)
            a = NodeId("a", 1)
            for i in range(50):
                trace.record(float(i), "send", a, a, Alpha(i))
            assert len(trace) <= limit + 1
            assert trace.dropped_records + len(trace) == 50
            # newest record always survives
            assert list(trace)[-1].time == 49.0


class FakeProtocol:
    def __init__(self):
        self.alphas = []

    def handlers(self):
        return {Alpha: self.alphas.append}


class TestSimNode:
    def make(self):
        engine = Engine()
        network = Network(engine)
        return engine, network, SimNode(NodeId("n", 1), network)

    def test_wire_registers_handlers(self):
        engine, network, node = self.make()
        protocol = node.wire("proto", FakeProtocol())
        node.deliver(Alpha(1))
        assert protocol.alphas == [Alpha(1)]
        assert node.protocol("proto") is protocol
        assert node.has_protocol("proto")

    def test_duplicate_slot_rejected(self):
        engine, network, node = self.make()
        node.attach("proto", object())
        with pytest.raises(SimulationError):
            node.attach("proto", object())

    def test_duplicate_handler_rejected(self):
        engine, network, node = self.make()
        node.register_handler(Alpha, lambda m: None)
        with pytest.raises(SimulationError):
            node.register_handler(Alpha, lambda m: None)

    def test_missing_protocol_raises(self):
        engine, network, node = self.make()
        with pytest.raises(SimulationError):
            node.protocol("nope")

    def test_unhandled_counted_not_fatal(self):
        engine, network, node = self.make()
        node.deliver(Beta(1))
        assert node.unhandled == 1

    def test_host_rng_streams_isolated_per_purpose(self):
        engine, network, node = self.make()
        host_a = node.host("membership")
        host_b = node.host("gossip")
        assert host_a.rng.random() != host_b.rng.random()
        assert host_a.address == node.node_id

    def test_alive_tracks_network(self):
        engine, network, node = self.make()
        assert node.alive
        network.fail(node.node_id)
        assert not node.alive
