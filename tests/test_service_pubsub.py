"""Topic pub/sub over the live runtime: fan-out, budgets, restart re-attach.

Real loopback sockets, small clusters — same conventions as
``test_runtime.py``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import ConfigurationError, RateLimitedError, ServiceError
from repro.core.config import HyParViewConfig
from repro.runtime.cluster import LocalCluster
from repro.runtime.node import RuntimeNode
from repro.service import PubSubCluster, PubSubNode, ServiceConfig

CONFIG = HyParViewConfig(
    active_view_capacity=3,
    passive_view_capacity=8,
    arwl=3,
    prwl=2,
    neighbor_request_timeout=1.0,
    promotion_retry_delay=0.1,
    promotion_max_passes=10,
)


def run(coroutine, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


class TestPubSubNode:
    def test_requires_started_node(self):
        node = RuntimeNode(config=CONFIG)
        with pytest.raises(ConfigurationError, match="started"):
            PubSubNode(node)

    def test_topic_fanout_across_nodes(self):
        async def scenario():
            cluster = LocalCluster(3, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(cluster)
            ones = service.subscribe(1, "orders", client="c1")
            twos = service.subscribe(2, "orders", client="c2")
            other = service.subscribe(1, "audit", client="c1")
            message_id = service.facade(0).client("c0").publish("orders", {"n": 1})
            await cluster.wait_for_delivery(message_id, 3)
            got_one = await ones.get(timeout=2.0)
            got_two = await twos.get(timeout=2.0)
            assert got_one.topic == "orders" and got_one.payload == {"n": 1}
            assert got_two.message_id == message_id
            assert await other.get(timeout=0.2) is None  # wrong topic
            service.detach()
            await cluster.stop()

        run(scenario())

    def test_publisher_receives_own_topic_locally(self):
        async def scenario():
            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(cluster)
            client = service.facade(0).client("me")
            subscription = client.subscribe("loop")
            client.publish("loop", "hello")
            message = await subscription.get(timeout=2.0)
            assert message.payload == "hello"
            service.detach()
            await cluster.stop()

        run(scenario())

    def test_rate_limit_raises_and_counts(self):
        async def scenario():
            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(
                cluster,
                config=ServiceConfig(publish_rate=10.0, publish_burst=2.0),
            )
            client = service.facade(0).client("spammer")
            client.publish("t")
            client.publish("t")
            with pytest.raises(RateLimitedError, match="spammer"):
                client.publish("t")
            assert client.rate_limited == 1
            assert client.published == 2
            service.detach()
            await cluster.stop()

        run(scenario())

    def test_topic_budget_limits_hot_topics_only(self):
        async def scenario():
            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(
                cluster,
                config=ServiceConfig(topic_rate=10.0, topic_burst=2.0),
            )
            facade = service.facade(0)
            client = facade.client("polite")
            client.publish("hot")
            client.publish("hot")
            with pytest.raises(RateLimitedError, match="'hot'"):
                client.publish("hot")
            # The budget is per *topic*: other topics still publish, and
            # the operator path shares the same hot-topic bucket.
            client.publish("cold")
            with pytest.raises(RateLimitedError, match="publish budget"):
                facade.publish("hot")
            assert facade.topic_rate_limited == 2
            assert client.rate_limited == 0  # per-client buckets untouched
            service.detach()
            await cluster.stop()

        run(scenario())

    def test_topic_budget_disabled_by_default(self):
        async def scenario():
            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(cluster)
            facade = service.facade(0)
            for _ in range(20):
                facade.publish("hot")
            assert facade.topic_rate_limited == 0
            assert facade._topic_buckets is None
            service.detach()
            await cluster.stop()

        run(scenario())

    def test_slow_subscriber_sheds_oldest(self):
        async def scenario():
            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(
                cluster, config=ServiceConfig(subscriber_queue=2)
            )
            facade = service.facade(0)
            subscription = facade.subscribe("firehose")
            for n in range(4):  # local self-delivery fills the queue
                facade.publish("firehose", n)
            await asyncio.sleep(0.1)
            assert subscription.dropped >= 1
            assert subscription.qsize() <= 2
            first = await subscription.get(timeout=1.0)
            assert first.payload >= 1  # the oldest entries were shed
            assert service.total_dropped() == subscription.dropped
            service.detach()
            await cluster.stop()

        run(scenario())

    def test_plain_broadcasts_are_ignored_not_delivered(self):
        async def scenario():
            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(cluster)
            subscription = service.subscribe(0, "t")
            cluster.nodes[0].broadcast("raw payload")
            await asyncio.sleep(0.2)
            assert service.facade(0).messages_ignored >= 1
            assert await subscription.get(timeout=0.2) is None
            service.detach()
            await cluster.stop()

        run(scenario())

    def test_topic_and_detach_validation(self):
        async def scenario():
            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            facade = PubSubNode(cluster.nodes[0])
            with pytest.raises(ServiceError, match="topic"):
                facade.publish("")
            facade.detach()
            with pytest.raises(ServiceError, match="detached"):
                facade.subscribe("t")
            with pytest.raises(ServiceError, match="detached"):
                facade.publish("t")
            facade.detach()  # idempotent
            await cluster.stop()

        run(scenario())


class TestPubSubCluster:
    def test_restart_reattaches_fresh_facade(self):
        async def scenario():
            cluster = LocalCluster(3, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(cluster)
            old_facade = service.facade(2)
            old_subscription = old_facade.subscribe("t")
            await cluster.crash_node(2)
            await cluster.restart_node(2, reuse_port=True)
            assert service.reattached == 1
            assert service.facade(2) is not old_facade
            assert service.facade(2).node is cluster.nodes[2]
            # The old facade died with its process; its subscription ended.
            assert await old_subscription.get(timeout=0.2) is None
            # The fresh facade serves traffic once the overlay re-admits
            # the reborn node (some peer carries it in an active view).
            reborn_id = cluster.nodes[2].node_id
            deadline = asyncio.get_running_loop().time() + 8.0
            while asyncio.get_running_loop().time() < deadline:
                if any(
                    reborn_id in node.active_view()
                    for node in cluster.nodes[:2]
                ):
                    break
                await asyncio.sleep(0.05)
            subscription = service.subscribe(2, "t", client="back")
            message_id = service.publish(0, "t", "again")
            await cluster.wait_for_delivery(message_id, 3)
            message = await subscription.get(timeout=2.0)
            assert message.payload == "again"
            service.detach()
            await cluster.stop()

        run(scenario())

    def test_detach_unhooks_restart_listener(self):
        async def scenario():
            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(cluster)
            service.detach()
            assert cluster.restart_listeners == []
            await cluster.stop()

        run(scenario())


class TestClusterMetrics:
    def test_registry_mirrors_service_and_transport_counters(self):
        async def scenario():
            from repro.obs.http import MetricsServer, scrape

            cluster = LocalCluster(2, config=CONFIG)
            await cluster.start()
            service = PubSubCluster(cluster)
            registry = service.metrics_registry()
            assert service.metrics_registry() is registry  # cached
            subscription = service.subscribe(1, "t", client="c1")
            message_id = service.publish(0, "t", {"n": 1})
            await cluster.wait_for_delivery(message_id, 2)
            assert (await subscription.get(timeout=2.0)).payload == {"n": 1}

            server = await MetricsServer(registry).start()
            try:
                body = await scrape("127.0.0.1", server.port)
            finally:
                await server.close()
            service.detach()
            await cluster.stop()
            return body

        body = run(scenario())
        # One exposition covers the service counters, the breaker, the
        # per-topic/per-client budgets and the transport epoch audits.
        for family in (
            "repro_service_published_total",
            "repro_service_delivered_total",
            "repro_service_topic_rate_limited_total",
            "repro_service_client_rate_limited_total",
            "repro_breaker_trips_total",
            "repro_breaker_open",
            "repro_transport_frames_total",
            "repro_transport_epoch",
        ):
            assert f"# TYPE {family} " in body, family
        published = [
            line
            for line in body.splitlines()
            if line.startswith("repro_service_published_total{")
        ]
        assert sum(float(line.split()[-1]) for line in published) >= 1
