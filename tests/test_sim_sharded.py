"""The sharded kernel must be indistinguishable from the single-shard engine.

``ShardedEngine`` reproduces :class:`~repro.sim.engine.Engine`'s global
(time, insertion-order) firing order by construction — a globally
monotonic sequence number plus a ``(priority, time, seq)`` K-way merge.
These tests hold it to that claim: hypothesis-fuzzed cross-shard traffic
(mirroring ``test_sim_engine.py``'s reference-heap strategy) must fire in
exactly the single-shard order, cascades created *while* a shard fires
must round-trip through the outbox without reordering, and the snapshot
surface must refuse mid-window state instead of tearing a batch apart.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.sharded import ShardedEngine
from repro.sim.shardproto import HandoffBatch, ShardSyncStats, WindowGrant

#: Delay grid shared with test_sim_engine's order-equivalence strategy:
#: heavy ties (same-instant traffic) plus one far-future outlier.
DELAYS = [0.0, 0.5, 1.0, 1.5, 2.0, 30.0]

#: Synthetic owners: four nodes striped across two shards, so roughly
#: half of all owner-to-owner traffic crosses the shard boundary.
OWNERS = [0, 1, 2, 3]


def _two_shard_engine(lookahead: float = 0.0) -> ShardedEngine:
    engine = ShardedEngine(2, lookahead=lookahead)
    for owner in OWNERS:
        engine.assign(owner, owner % 2)
    return engine


def _drive(kernel, operations, fired, *, routed: bool) -> None:
    """Replay mixed schedule/post/cancel traffic with cross-shard cascades.

    Each fired event appends its index and posts one follow-up event
    owned by the *next* node — on the sharded kernel that child is a
    cross-shard handoff half the time, created while a shard is firing
    (the only moment handoffs exist).  The single-shard replay uses the
    owner-blind entry points; both must fire identically.
    """

    def fire(index: int, generation: int) -> None:
        fired.append((index, generation))
        if generation:
            child_owner = OWNERS[(index + 1) % len(OWNERS)]
            child_delay = DELAYS[index % len(DELAYS)]
            if routed:
                kernel.post_for(child_owner, child_delay, fire, index, generation - 1)
            else:
                kernel.post(child_delay, fire, index, generation - 1)

    for index, (delay, owner, cancel) in enumerate(operations):
        if cancel:
            if routed:
                kernel.schedule_for(owner, delay, fire, index, 0).cancel()
            else:
                kernel.schedule(delay, fire, index, 0).cancel()
        elif index % 2:
            if routed:
                kernel.schedule_for(owner, delay, fire, index, 1)
            else:
                kernel.schedule(delay, fire, index, 1)
        else:
            if routed:
                kernel.post_for(owner, delay, fire, index, 1)
            else:
                kernel.post(delay, fire, index, 1)
    kernel.run_until_idle()


class TestOrderEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(DELAYS),
                st.sampled_from(OWNERS),
                st.booleans(),
            ),
            max_size=60,
        )
    )
    def test_two_shard_merge_matches_single_shard_order(self, operations):
        """Random cross-shard traffic fires in exactly the order the
        single-shard engine produces — including the cascades each event
        spawns mid-firing, which traverse the handoff outbox."""
        reference = Engine()
        reference_fired: list = []
        _drive(reference, operations, reference_fired, routed=False)

        sharded = _two_shard_engine()
        sharded_fired: list = []
        _drive(sharded, operations, sharded_fired, routed=True)

        assert sharded_fired == reference_fired
        assert sharded.pending == sharded.cancelled_pending
        assert sharded.now == reference.now

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(DELAYS),
                st.sampled_from(OWNERS),
                st.booleans(),
            ),
            max_size=60,
        )
    )
    def test_lookahead_batches_without_changing_order(self, operations):
        """A non-zero lookahead only changes *when* outboxes merge (the
        batching), never *what* fires — same order, same final clock."""
        reference_fired: list = []
        _drive(Engine(), operations, reference_fired, routed=False)

        sharded = _two_shard_engine(lookahead=0.5)
        sharded_fired: list = []
        _drive(sharded, operations, sharded_fired, routed=True)

        assert sharded_fired == reference_fired
        # Every handoff eventually landed in a batch: the books balance.
        assert sharded.sync.handoffs == sharded.sync.batched_events

    def test_quantised_tick_matches_single_shard(self):
        """Tick quantisation rounds identically on both kernels, with the
        stable in-bucket sort by raw timestamps preserved."""
        operations = [(d, i % 4, False) for i, d in enumerate([0.3, 0.7, 1.1, 0.2, 1.9, 0.7])]
        reference = Engine(tick=0.5)
        reference_fired: list = []
        _drive(reference, operations, reference_fired, routed=False)

        sharded = ShardedEngine(2, tick=0.5)
        for owner in OWNERS:
            sharded.assign(owner, owner % 2)
        sharded_fired: list = []
        _drive(sharded, operations, sharded_fired, routed=True)

        assert sharded_fired == reference_fired
        assert sharded.now == reference.now


class TestKernelSemantics:
    def test_error_surface_matches_engine(self):
        engine = _two_shard_engine()
        with pytest.raises(SimulationError, match="negative delay"):
            engine.post(-0.1, lambda: None)
        with pytest.raises(SimulationError, match="negative delay"):
            engine.schedule_for(0, -0.1, lambda: None)
        engine.post(1.0, lambda: None)
        engine.run_until_idle()
        with pytest.raises(SimulationError, match="in the past"):
            engine.post_at(0.5, lambda: None)
        with pytest.raises(SimulationError, match="deadline in the past"):
            engine.run_until(0.0)

    def test_constructor_validation(self):
        with pytest.raises(SimulationError, match="shard count"):
            ShardedEngine(0)
        with pytest.raises(SimulationError, match="tick"):
            ShardedEngine(2, tick=0.0)
        with pytest.raises(SimulationError, match="lookahead"):
            ShardedEngine(2, lookahead=-1.0)
        with pytest.raises(SimulationError, match="out of range"):
            ShardedEngine(2).assign("n", 2)

    def test_runaway_guard(self):
        engine = _two_shard_engine()

        def rescheduler():
            engine.post(0.1, rescheduler)

        engine.post(0.1, rescheduler)
        with pytest.raises(SimulationError, match="runaway"):
            engine.run_until_idle(max_events=100)

    def test_cancelled_accounting_and_compaction(self):
        engine = _two_shard_engine()
        handles = [engine.schedule_for(i % 4, 1.0 + i, lambda: None) for i in range(10)]
        engine.post(1.0, lambda: None)
        assert engine.pending == 11
        for handle in handles[:4]:
            handle.cancel()
        assert engine.live_pending == 7
        assert engine.cancelled_pending == 4
        assert engine.compact() == 4
        assert engine.pending == 7
        assert engine.cancelled_pending == 0

    def test_partition_is_contiguous_and_balanced(self):
        engine = ShardedEngine(4)
        nodes = list(range(10))
        engine.partition(nodes)
        shards = [engine.shard_of(n) for n in nodes]
        assert shards == sorted(shards)  # contiguous blocks
        assert set(shards) == {0, 1, 2, 3}

    def test_window_grants_reflect_lookahead(self):
        engine = _two_shard_engine(lookahead=2.0)
        engine.schedule_for(0, 5.0, lambda: None)  # shard 0
        engine.schedule_for(1, 9.0, lambda: None)  # shard 1
        grants = engine.window_grants()
        assert grants == (
            WindowGrant(shard=0, until=11.0),  # other shard's head 9.0 + 2.0
            WindowGrant(shard=1, until=7.0),
        )

    def test_sync_ledger_counts_handoffs(self):
        engine = _two_shard_engine(lookahead=1.0)
        fired = []

        def hop(owner):
            fired.append(owner)
            if owner < 3:
                engine.post_for(owner + 1, 1.0, hop, owner + 1)

        engine.post_for(0, 1.0, hop, 0)
        engine.run_until_idle()
        assert fired == [0, 1, 2, 3]
        # Each hop crosses the shard stripe: 0->1, 1->2, 2->3.
        assert engine.sync.handoffs == 3
        assert engine.sync.batched_events == 3
        assert engine.sync.lookahead_violations == 0
        snapshot = engine.sync.snapshot()
        assert snapshot["handoffs"] == 3


class TestSnapshots:
    def test_freeze_thaw_round_trip(self):
        engine = _two_shard_engine()
        engine.schedule_for(0, 1.0, print, "a")
        engine.schedule_for(1, 2.0, print, "b")
        doomed = engine.schedule_for(2, 3.0, print, "c")
        doomed.cancel()
        frozen = pickle.dumps(engine)
        thawed = pickle.loads(frozen)
        assert thawed.pending == 2  # cancelled timer dropped in transit
        assert thawed.cancelled_pending == 0
        assert thawed.now == engine.now
        # Snapshot form is canonical: re-freezing is byte-stable.
        assert pickle.dumps(thawed) == pickle.dumps(pickle.loads(frozen))
        # And the thawed copy keeps merging correctly.
        thawed.post_for(3, 0.5, print, "d")
        assert thawed.run_until_idle() == 3

    def test_mid_window_snapshot_refused(self):
        engine = _two_shard_engine()
        # A cross-shard post made *while* shard 0 is firing lands in the
        # outbox; stepping exactly once leaves the window open.
        engine.post_for(0, 1.0, engine.post_for, 1, 5.0, print, "x")
        assert engine.step() is True
        assert engine.sync.handoffs == 1
        with pytest.raises(SimulationError, match="mid-window"):
            pickle.dumps(engine)
        # Draining closes the window; freezing works again.
        engine.run_until_idle()
        assert pickle.loads(pickle.dumps(engine)).pending == 0


class TestShardProtocol:
    def test_handoff_batch_is_sized_and_frozen(self):
        batch = HandoffBatch(src_shard=0, dst_shard=1, entries=((1.0, 1.0, 0, None, None),))
        assert len(batch) == 1
        with pytest.raises(AttributeError):
            batch.src_shard = 2

    def test_sync_stats_snapshot_shape(self):
        stats = ShardSyncStats()
        assert stats.snapshot() == {
            "handoffs": 0,
            "batches": 0,
            "batched_events": 0,
            "lookahead_violations": 0,
        }
