"""Tests for the message-overhead accounting driver."""

from repro.experiments.overhead import DATA_TYPES, run_overhead_experiment
from repro.experiments.params import ExperimentParams

PARAMS = ExperimentParams.scaled(80, stabilization_cycles=8)


class TestOverheadAccounting:
    def test_hyparview_cycle_cost_tracks_shuffle_walk(self):
        result = run_overhead_experiment("hyparview", PARAMS, cycles=5, messages=5)
        walk_cost = PARAMS.hyparview.effective_shuffle_ttl + 1
        assert 1.0 <= result.control_per_node_cycle <= walk_cost + 6
        assert "Shuffle" in result.control_breakdown
        assert "ShuffleReply" in result.control_breakdown

    def test_cyclon_cycle_cost_is_two_messages(self):
        result = run_overhead_experiment("cyclon", PARAMS, cycles=5, messages=5)
        assert abs(result.control_per_node_cycle - 2.0) < 0.3
        assert set(result.control_breakdown) <= {
            "CyclonShuffleRequest",
            "CyclonShuffleReply",
        }

    def test_scamp_cycle_cost_is_heartbeats(self):
        result = run_overhead_experiment("scamp", PARAMS, cycles=5, messages=5)
        assert "ScampHeartbeat" in result.control_breakdown
        # One heartbeat per PartialView entry per cycle: ~(c+1) ln n.
        assert result.control_per_node_cycle > 4.0

    def test_flood_data_cost_is_sum_of_views(self):
        result = run_overhead_experiment("hyparview", PARAMS, cycles=2, messages=10)
        # Each of the n nodes forwards to ~(capacity - 1) peers, the origin
        # to capacity: data per broadcast ~ n * (capacity - 1).
        capacity = PARAMS.hyparview.active_view_capacity
        expected = PARAMS.n * (capacity - 1)
        assert 0.7 * expected <= result.data_per_broadcast <= 1.3 * expected
        assert result.broadcast_control_per_broadcast < 1.0

    def test_plumtree_splits_data_and_control(self):
        result = run_overhead_experiment("plumtree", PARAMS, cycles=2, messages=10)
        flood = run_overhead_experiment("hyparview", PARAMS, cycles=2, messages=10)
        assert result.data_per_broadcast < flood.data_per_broadcast
        assert result.broadcast_control_per_broadcast > 0  # IHAVE traffic

    def test_data_types_constant_covers_payload_messages(self):
        assert "GossipData" in DATA_TYPES
        assert "PlumtreeGossip" in DATA_TYPES
