"""Tests for deterministic random-stream management."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.common.ids import NodeId
from repro.common.rng import SeedSequence, choice_or_none, sample_up_to


class TestSeedSequence:
    def test_same_label_same_stream(self):
        seeds = SeedSequence(42)
        a = [seeds.stream("x").random() for _ in range(5)]
        b = [seeds.stream("x").random() for _ in range(5)]
        assert a == b

    def test_different_labels_differ(self):
        seeds = SeedSequence(42)
        assert seeds.stream("x").random() != seeds.stream("y").random()

    def test_different_roots_differ(self):
        assert SeedSequence(1).stream("x").random() != SeedSequence(2).stream("x").random()

    def test_node_stream_isolated_by_purpose(self):
        seeds = SeedSequence(0)
        node = NodeId("n", 1)
        assert (
            seeds.node_stream(node, "membership").random()
            != seeds.node_stream(node, "gossip").random()
        )

    def test_order_independence(self):
        """Creating extra streams must not perturb existing ones."""
        seeds_a = SeedSequence(9)
        seeds_a.stream("noise-1")
        value_a = seeds_a.stream("target").random()
        seeds_b = SeedSequence(9)
        value_b = seeds_b.stream("target").random()
        assert value_a == value_b


class TestSampleUpTo:
    def test_k_larger_than_population(self):
        rng = random.Random(0)
        assert sorted(sample_up_to(rng, [1, 2, 3], 10)) == [1, 2, 3]

    def test_k_zero_or_negative(self):
        rng = random.Random(0)
        assert sample_up_to(rng, [1, 2, 3], 0) == []
        assert sample_up_to(rng, [1, 2, 3], -1) == []

    def test_distinct_samples(self):
        rng = random.Random(0)
        sample = sample_up_to(rng, list(range(100)), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    @given(st.lists(st.integers(), unique=True, max_size=30), st.integers(0, 40))
    def test_sample_is_subset_property(self, population, k):
        rng = random.Random(7)
        sample = sample_up_to(rng, population, k)
        assert len(sample) == min(k if k > 0 else 0, len(population))
        assert set(sample) <= set(population)


class TestChoiceOrNone:
    def test_empty_population(self):
        assert choice_or_none(random.Random(0), []) is None

    def test_singleton(self):
        assert choice_or_none(random.Random(0), [5]) == 5

    def test_choice_from_population(self):
        rng = random.Random(0)
        assert choice_or_none(rng, [1, 2, 3]) in (1, 2, 3)
