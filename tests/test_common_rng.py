"""Tests for deterministic random-stream management."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.common.ids import NodeId
from repro.common.rng import SeedSequence, choice_or_none, sample_up_to


class TestSeedSequence:
    def test_same_label_same_stream(self):
        seeds = SeedSequence(42)
        a = [seeds.stream("x").random() for _ in range(5)]
        b = [seeds.stream("x").random() for _ in range(5)]
        assert a == b

    def test_different_labels_differ(self):
        seeds = SeedSequence(42)
        assert seeds.stream("x").random() != seeds.stream("y").random()

    def test_different_roots_differ(self):
        assert SeedSequence(1).stream("x").random() != SeedSequence(2).stream("x").random()

    def test_node_stream_isolated_by_purpose(self):
        seeds = SeedSequence(0)
        node = NodeId("n", 1)
        assert (
            seeds.node_stream(node, "membership").random()
            != seeds.node_stream(node, "gossip").random()
        )

    def test_order_independence(self):
        """Creating extra streams must not perturb existing ones."""
        seeds_a = SeedSequence(9)
        seeds_a.stream("noise-1")
        value_a = seeds_a.stream("target").random()
        seeds_b = SeedSequence(9)
        value_b = seeds_b.stream("target").random()
        assert value_a == value_b


class TestSampleUpTo:
    def test_k_larger_than_population(self):
        rng = random.Random(0)
        assert sorted(sample_up_to(rng, [1, 2, 3], 10)) == [1, 2, 3]

    def test_k_zero_or_negative(self):
        rng = random.Random(0)
        assert sample_up_to(rng, [1, 2, 3], 0) == []
        assert sample_up_to(rng, [1, 2, 3], -1) == []

    def test_distinct_samples(self):
        rng = random.Random(0)
        sample = sample_up_to(rng, list(range(100)), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    @given(st.lists(st.integers(), unique=True, max_size=30), st.integers(0, 40))
    def test_sample_is_subset_property(self, population, k):
        rng = random.Random(7)
        sample = sample_up_to(rng, population, k)
        assert len(sample) == min(k if k > 0 else 0, len(population))
        assert set(sample) <= set(population)


class TestChoiceOrNone:
    def test_empty_population(self):
        assert choice_or_none(random.Random(0), []) is None

    def test_singleton(self):
        assert choice_or_none(random.Random(0), [5]) == 5

    def test_choice_from_population(self):
        rng = random.Random(0)
        assert choice_or_none(rng, [1, 2, 3]) in (1, 2, 3)


class TestStreamRandom:
    """The compact (seed, words-consumed) encoding of RNG streams."""

    def _exercise(self, stream):
        stream.random()
        stream.shuffle(list(range(57)))
        stream.sample(range(100), 13)
        stream.choice(range(7))
        stream.uniform(0.0, 1.0)
        stream.getrandbits(128)
        stream.randrange(10**12)

    def test_draws_match_plain_random(self):
        """Counting must not perturb the stream: same seed, same draws."""
        from repro.common.rng import StreamRandom

        counted = StreamRandom(1234)
        plain = random.Random(1234)
        assert [counted.random() for _ in range(5)] == [plain.random() for _ in range(5)]
        assert counted.sample(range(50), 8) == plain.sample(range(50), 8)
        a, b = list(range(20)), list(range(20))
        counted.shuffle(a)
        plain.shuffle(b)
        assert a == b

    def test_word_count_is_exact(self):
        """Fast-forwarding a fresh stream by the recorded word count must
        reproduce the generator state bit-for-bit."""
        from repro.common.rng import StreamRandom

        stream = StreamRandom(98765)
        self._exercise(stream)
        replay = random.Random(98765)
        for _ in range(stream.words_consumed):
            replay.getrandbits(32)
        assert replay.getstate() == stream.getstate()

    def test_pickle_is_compact(self):
        import pickle

        from repro.common.rng import StreamRandom

        stream = StreamRandom(42)
        self._exercise(stream)
        compact = pickle.dumps(stream, protocol=pickle.HIGHEST_PROTOCOL)
        full = pickle.dumps(random.Random(42), protocol=pickle.HIGHEST_PROTOCOL)
        assert len(compact) < 120
        assert len(full) > 2000  # the state it replaces: ~2.5 KB per stream
        assert len(full) / len(compact) > 15

    def test_unpickled_stream_continues_identically(self):
        import pickle

        from repro.common.rng import StreamRandom

        original = StreamRandom(7)
        self._exercise(original)
        thawed = pickle.loads(pickle.dumps(original))
        assert [original.random() for _ in range(10)] == [
            thawed.random() for _ in range(10)
        ]
        assert original.sample(range(200), 17) == thawed.sample(range(200), 17)

    def test_materialization_is_lazy(self):
        import pickle

        from repro.common.rng import StreamRandom

        original = StreamRandom(7)
        self._exercise(original)
        thawed = pickle.loads(pickle.dumps(original))
        assert thawed._pending_words == original.words_consumed
        # Re-pickling an untouched thawed stream costs no fast-forward and
        # is byte-identical to the first freeze.
        assert pickle.dumps(thawed) == pickle.dumps(original)
        assert thawed._pending_words == original.words_consumed
        thawed.random()  # first draw pays the (cheap) fast-forward
        assert thawed._pending_words == 0

    def test_reseeding_resets_the_count(self):
        from repro.common.rng import StreamRandom

        stream = StreamRandom(1)
        stream.random()
        assert stream.words_consumed > 0
        stream.seed(2)
        assert stream.words_consumed == 0
        assert stream.random() == random.Random(2).random()

    def test_seed_sequence_hands_out_stream_randoms(self):
        from repro.common.rng import SeedSequence, StreamRandom

        seeds = SeedSequence(3)
        assert isinstance(seeds.stream("x"), StreamRandom)
        assert isinstance(seeds.node_stream(NodeId("n", 1)), StreamRandom)

    def test_unreplayable_operations_fail_loudly(self):
        """gauss() hides cached state and setstate() bypasses the word
        counter — both would silently corrupt snapshot replay, so both
        must raise instead."""
        import pytest

        from repro.common.rng import StreamRandom

        stream = StreamRandom(5)
        with pytest.raises(NotImplementedError, match="gauss"):
            stream.gauss(0.0, 1.0)
        with pytest.raises(NotImplementedError, match="state"):
            stream.setstate(random.Random(5).getstate())
        # The stateless equivalent stays available and exactly counted.
        stream.normalvariate(0.0, 1.0)
        thawed = __import__("pickle").loads(__import__("pickle").dumps(stream))
        assert thawed.normalvariate(0.0, 1.0) == stream.normalvariate(0.0, 1.0)

    def test_os_entropy_seed_rejected(self):
        import pytest

        from repro.common.rng import StreamRandom

        with pytest.raises(ValueError, match="explicit seed"):
            StreamRandom(None)
        stream = StreamRandom(5)
        with pytest.raises(ValueError, match="explicit seed"):
            stream.seed()
