"""The epoch handshake: restarted identities vs. their predecessors.

A node that restarts on the *same* address must be distinguishable from
the process it replaced: peers learn the higher epoch from the wire
handshake, reject handshakes claiming an older one, and drop frames that
arrive on connections belonging to a superseded incarnation.  The
observable guarantee: **zero stale-incarnation deliveries**, even with a
publish in flight across the crash/restart window.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.common.ids import NodeId
from repro.core.config import HyParViewConfig
from repro.runtime.cluster import LocalCluster
from repro.runtime.node import RuntimeNode

CONFIG = HyParViewConfig(
    active_view_capacity=3,
    passive_view_capacity=8,
    arwl=3,
    prwl=2,
    neighbor_request_timeout=1.0,
    promotion_retry_delay=0.1,
    promotion_max_passes=10,
)


def run(coroutine, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coroutine, timeout))


async def wait_until(predicate, timeout=8.0, interval=0.05):
    """Poll ``predicate`` until truthy (returns True) or timeout (False)."""
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


async def _hello(port: int, claimed: NodeId, epoch: int):
    """Open a raw connection to ``port`` and perform the wire handshake
    claiming to be ``claimed`` at ``epoch``.  Returns (reader, writer)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    frame = json.dumps({"hello": claimed.to_wire(), "epoch": epoch}) + "\n"
    writer.write(frame.encode("utf-8"))
    await writer.drain()
    return reader, writer


class TestEpochHandshake:
    def test_restart_bumps_incarnation_and_epoch(self):
        async def scenario():
            cluster = LocalCluster(3, config=CONFIG)
            await cluster.start()
            victim_id = cluster.nodes[2].node_id
            await cluster.crash_node(2)
            reborn = await cluster.restart_node(2, reuse_port=True)
            assert reborn.node_id == victim_id  # same address...
            assert reborn.incarnation == 1  # ...new identity
            assert reborn.transport.epoch == 1
            # Peers that talk to the reborn node learn its epoch from the
            # wire handshake (the rejoin takes a moment to propagate).
            assert await wait_until(
                lambda: max(
                    node.transport.peer_epoch(victim_id)
                    for node in cluster.nodes[:2]
                )
                == 1
            )
            await cluster.stop()

        run(scenario())

    def test_publish_racing_restart_never_delivers_stale(self):
        """A publish burst in flight while the victim restarts on its old
        port: whatever the predecessor's half-dead sockets still carry, no
        delivery may be attributed to the old incarnation after the new
        process started."""

        async def scenario():
            cluster = LocalCluster(3, config=CONFIG)
            await cluster.start()
            victim_id = cluster.nodes[2].node_id

            publishing = True

            async def publish_loop():
                sent = []
                while publishing:
                    origin = cluster.nodes[0]
                    if origin.started:
                        sent.append(origin.broadcast({"seq": len(sent)}))
                    await asyncio.sleep(0.005)
                return sent

            publisher = asyncio.create_task(publish_loop())
            await asyncio.sleep(0.1)
            await cluster.crash_node(2)
            await asyncio.sleep(0.05)  # publishes keep flowing meanwhile
            reborn = await cluster.restart_node(2, reuse_port=True)
            await cluster.wait_for_views(1)
            await asyncio.sleep(0.3)
            publishing = False
            sent = await publisher
            assert len(sent) > 10

            # The audit: no record by the old incarnation after the new
            # process came up.
            stale = [
                record
                for record in cluster.delivery_log.records_for(victim_id)
                if record.incarnation < reborn.incarnation
                and record.at > reborn.started_at
            ]
            assert stale == []
            # The reborn node's own history starts empty and then fills
            # with post-restart messages only.
            assert all(
                record.incarnation == 1
                for record in cluster.delivery_log.records_for(
                    victim_id, incarnation=reborn.incarnation
                )
            )
            await cluster.stop()

        run(scenario())

    def test_stale_handshake_rejected(self):
        """A connection claiming an address's *old* epoch after peers have
        seen a newer one is refused outright (half-open predecessor socket
        or an identity replay)."""

        async def scenario():
            node = RuntimeNode(config=CONFIG)
            await node.start()
            ghost = NodeId("127.0.0.1", 45999)

            # First contact: the address at epoch 1.
            _reader, writer = await _hello(node.node_id.port, ghost, epoch=1)
            await asyncio.sleep(0.05)
            assert node.transport.peer_epoch(ghost) == 1

            # The predecessor (epoch 0) shows up late: rejected, closed.
            stale_reader, stale_writer = await _hello(
                node.node_id.port, ghost, epoch=0
            )
            assert await stale_reader.read() == b""  # EOF, no reply hello
            assert node.transport.stale_handshakes == 1

            stale_writer.close()
            writer.close()
            await node.stop()

        run(scenario())

    def test_frames_on_superseded_connection_are_dropped(self):
        """A connection whose epoch has been overtaken may still have
        frames in flight; the read loop drops them, counted.  (In
        production the epoch map advances when a newer handshake races a
        frame already buffered on the old connection; the map is advanced
        directly here to pin that race deterministically.)"""

        async def scenario():
            node = RuntimeNode(config=CONFIG)
            await node.start()
            ghost = NodeId("127.0.0.1", 45998)

            _reader, writer = await _hello(node.node_id.port, ghost, epoch=0)
            await asyncio.sleep(0.05)
            assert node.transport.peer_epoch(ghost) == 0
            node.transport._peer_epochs[ghost] = 1  # the address moved on

            # The old incarnation's connection speaks from the past.
            writer.write(b'{"ghost": "frame"}\n')
            await writer.drain()
            await asyncio.sleep(0.05)
            assert node.transport.frames_stale == 1
            assert node.unhandled == 0  # nothing was dispatched

            writer.close()
            await node.stop()

        run(scenario())

    def test_incarnation_validation(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="incarnation"):
            RuntimeNode(config=CONFIG, incarnation=-1)
