"""Tests for the live-runtime latency histogram (repro.metrics.latency).

The hypothesis properties pin the subtle contract around the lazy-sort
flag: querying a percentile sorts the sample buffer in place, and a
``merge`` *after* that query must still yield exact nearest-rank
quantiles over the concatenated samples (the flag must be invalidated,
not trusted).
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.latency import LatencyHistogram

samples = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=0, max_size=60
)


def nearest_rank(values, p):
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


class TestBasics:
    def test_empty_reports_none(self):
        histogram = LatencyHistogram()
        assert histogram.p50() is None
        assert histogram.p999() is None
        assert histogram.mean() is None
        assert histogram.max() is None

    def test_negative_samples_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-0.5)
        assert histogram.p50() == 0.0

    def test_p999_needs_a_thousand_samples_to_leave_the_max(self):
        histogram = LatencyHistogram()
        for i in range(1, 1001):
            histogram.record(i / 1000.0)
        assert histogram.p999() == 1.0
        histogram.record(2.0)
        assert histogram.p999() == 1.0  # rank 1001 of 1001 is ceil(999.(...))

    def test_summary_zero_fills_empty(self):
        assert LatencyHistogram().summary() == {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p99": 0.0,
            "p999": 0.0,
            "max": 0.0,
        }

    def test_summary_matches_queries(self):
        histogram = LatencyHistogram()
        for i in range(1, 101):
            histogram.record(i / 100.0)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50"] == histogram.p50() == 0.5
        assert summary["p99"] == histogram.p99() == 0.99
        assert summary["p999"] == histogram.p999() == 1.0
        assert summary["max"] == 1.0


class TestProperties:
    @given(samples, st.floats(min_value=0.001, max_value=100.0))
    def test_percentile_is_nearest_rank(self, values, p):
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        assert histogram.percentile(p) == nearest_rank(values, p)

    @given(samples, samples, st.floats(min_value=0.001, max_value=100.0))
    def test_merge_after_percentile_query(self, first, second, p):
        left = LatencyHistogram()
        for value in first:
            left.record(value)
        left.percentile(50.0)  # force the in-place sort before merging
        right = LatencyHistogram()
        for value in second:
            right.record(value)
        right.percentile(99.0)
        left.merge(right)
        assert left.count == len(first) + len(second)
        assert left.percentile(p) == nearest_rank(first + second, p)

    @given(samples)
    def test_quantiles_are_ordered(self, values):
        histogram = LatencyHistogram()
        for value in values:
            histogram.record(value)
        summary = histogram.summary()
        assert summary["p50"] <= summary["p99"] <= summary["p999"] <= summary["max"]
