"""Tests for the simulated network fabric: delivery disciplines, failure
injection, connection watching, partitions and loss."""

from dataclasses import dataclass

import pytest

from repro.common.errors import SimulationError, UnknownNodeError
from repro.common.ids import NodeId
from repro.common.messages import Message, register_message
from repro.common.rng import SeedSequence
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.node import SimNode
from repro.sim.trace import EventTrace


@register_message("test.ping")
@dataclass(frozen=True, slots=True)
class Ping(Message):
    value: int


def make_network(loss_rate: float = 0.0):
    engine = Engine()
    network = Network(engine, seeds=SeedSequence(3), loss_rate=loss_rate)
    return engine, network


def make_node(network, name):
    node = SimNode(NodeId(name, 1), network)
    received = []
    node.register_handler(Ping, received.append)
    return node, received


class TestDatagramDelivery:
    def test_delivers_to_alive_destination(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        network.send(a.node_id, b.node_id, Ping(1))
        engine.run_until_idle()
        assert received == [Ping(1)]

    def test_latency_applied(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        network.send(a.node_id, b.node_id, Ping(1))
        assert received == []  # not yet delivered
        engine.run_until_idle()
        assert engine.now > 0.0

    def test_silently_dropped_to_dead_destination(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        network.fail(b.node_id)
        network.send(a.node_id, b.node_id, Ping(1))
        engine.run_until_idle()
        assert received == []
        assert network.stats.dropped_dead == 1

    def test_random_loss(self):
        engine, network = make_network(loss_rate=0.5)
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        for i in range(200):
            network.send(a.node_id, b.node_id, Ping(i))
        engine.run_until_idle()
        assert 0 < len(received) < 200
        assert network.stats.dropped_loss == 200 - len(received)

    def test_loss_rate_validation(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            Network(engine, loss_rate=1.0)


class TestReliableDelivery:
    def test_no_loss_applied_to_reliable_sends(self):
        engine, network = make_network(loss_rate=0.9)
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        failures = []
        for i in range(50):
            network.send(a.node_id, b.node_id, Ping(i), on_failure=lambda p, m: failures.append(p))
        engine.run_until_idle()
        assert len(received) == 50
        assert failures == []

    def test_failure_callback_for_dead_destination(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        failures = []
        network.fail(b.node_id)
        network.send(a.node_id, b.node_id, Ping(1), on_failure=lambda p, m: failures.append((p, m)))
        engine.run_until_idle()
        assert failures == [(b.node_id, Ping(1))]
        assert network.stats.send_failures == 1

    def test_failure_callback_when_destination_dies_in_flight(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        failures = []
        network.send(a.node_id, b.node_id, Ping(1), on_failure=lambda p, m: failures.append(p))
        network.fail(b.node_id)  # dies before delivery
        engine.run_until_idle()
        assert received == []
        assert failures == [b.node_id]

    def test_no_failure_callback_to_dead_sender(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        failures = []
        network.fail(b.node_id)
        network.send(a.node_id, b.node_id, Ping(1), on_failure=lambda p, m: failures.append(p))
        network.fail(a.node_id)
        engine.run_until_idle()
        assert failures == []


class TestProbe:
    def test_probe_alive(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        results = []
        network.probe(a.node_id, b.node_id, lambda p, ok: results.append((p, ok)))
        engine.run_until_idle()
        assert results == [(b.node_id, True)]
        assert network.stats.probes_ok == 1

    def test_probe_dead(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        network.fail(b.node_id)
        results = []
        network.probe(a.node_id, b.node_id, lambda p, ok: results.append(ok))
        engine.run_until_idle()
        assert results == [False]
        assert network.stats.probes_failed == 1

    def test_probe_target_dies_during_handshake(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        results = []
        network.probe(a.node_id, b.node_id, lambda p, ok: results.append(ok))
        network.fail(b.node_id)
        engine.run_until_idle()
        assert results == [False]


class TestWatch:
    def test_watcher_notified_on_failure(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        downs = []
        network.watch(a.node_id, b.node_id, downs.append)
        network.fail(b.node_id)
        engine.run_until_idle()
        assert downs == [b.node_id]

    def test_unwatch_suppresses_notification(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        downs = []
        network.watch(a.node_id, b.node_id, downs.append)
        network.unwatch(a.node_id, b.node_id)
        network.fail(b.node_id)
        engine.run_until_idle()
        assert downs == []

    def test_watching_already_dead_peer_notifies(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        network.fail(b.node_id)
        downs = []
        network.watch(a.node_id, b.node_id, downs.append)
        engine.run_until_idle()
        assert downs == [b.node_id]

    def test_dead_watcher_not_notified(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        downs = []
        network.watch(a.node_id, b.node_id, downs.append)
        network.fail(a.node_id)
        network.fail(b.node_id)
        engine.run_until_idle()
        assert downs == []

    def test_rewatch_replaces_callback(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        first, second = [], []
        network.watch(a.node_id, b.node_id, first.append)
        network.watch(a.node_id, b.node_id, second.append)
        network.fail(b.node_id)
        engine.run_until_idle()
        assert first == []
        assert second == [b.node_id]

    def test_notification_arrives_after_delay_not_instantly(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        times = []
        network.watch(a.node_id, b.node_id, lambda p: times.append(engine.now))
        network.fail(b.node_id)
        assert times == []  # notification is scheduled, not synchronous
        engine.run_until_idle()
        assert times and times[0] > 0.0


class TestLiveness:
    def test_fail_and_recover(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        assert network.is_alive(a.node_id)
        network.fail(a.node_id)
        assert not network.is_alive(a.node_id)
        network.recover(a.node_id)
        assert network.is_alive(a.node_id)

    def test_unknown_node_operations_raise(self):
        engine, network = make_network()
        ghost = NodeId("ghost", 1)
        with pytest.raises(UnknownNodeError):
            network.fail(ghost)
        with pytest.raises(UnknownNodeError):
            network.recover(ghost)
        with pytest.raises(UnknownNodeError):
            network.node(ghost)

    def test_duplicate_registration_rejected(self):
        engine, network = make_network()
        make_node(network, "a")
        with pytest.raises(SimulationError):
            SimNode(NodeId("a", 1), network)

    def test_dead_node_timers_suppressed(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        fired = []
        a.clock.schedule(1.0, lambda: fired.append(1))
        network.fail(a.node_id)
        engine.run_until_idle()
        assert fired == []


class TestPartitions:
    def test_datagrams_cross_partition_dropped(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        network.set_partitions([[a.node_id], [b.node_id]])
        network.send(a.node_id, b.node_id, Ping(1))
        engine.run_until_idle()
        assert received == []

    def test_reliable_sends_cross_partition_fail(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        network.set_partitions([[a.node_id], [b.node_id]])
        failures = []
        network.send(a.node_id, b.node_id, Ping(1), on_failure=lambda p, m: failures.append(p))
        engine.run_until_idle()
        assert failures == [b.node_id]

    def test_same_partition_delivers(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        c, _ = make_node(network, "c")
        network.set_partitions([[a.node_id, b.node_id], [c.node_id]])
        network.send(a.node_id, b.node_id, Ping(1))
        engine.run_until_idle()
        assert received == [Ping(1)]

    def test_unlisted_nodes_form_implicit_group(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, received_b = make_node(network, "b")
        c, received_c = make_node(network, "c")
        network.set_partitions([[a.node_id]])
        network.send(b.node_id, c.node_id, Ping(1))
        network.send(a.node_id, b.node_id, Ping(2))
        engine.run_until_idle()
        assert received_c == [Ping(1)]
        assert received_b == []

    def test_heal_partition(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, received = make_node(network, "b")
        network.set_partitions([[a.node_id], [b.node_id]])
        network.clear_partitions()
        network.send(a.node_id, b.node_id, Ping(1))
        engine.run_until_idle()
        assert received == [Ping(1)]

    def test_node_in_two_groups_rejected(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        with pytest.raises(SimulationError):
            network.set_partitions([[a.node_id], [a.node_id]])


class TestStatsAndTrace:
    def test_stats_count_sends_and_deliveries(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        network.send(a.node_id, b.node_id, Ping(1))
        network.send(a.node_id, b.node_id, Ping(2))
        engine.run_until_idle()
        snapshot = network.stats.snapshot()
        assert snapshot["sent"] == 2
        assert snapshot["delivered"] == 2
        assert snapshot["messages_by_type"] == {"Ping": 2}

    def test_trace_records_send_and_deliver(self):
        engine, network = make_network()
        network.trace = EventTrace()
        a, _ = make_node(network, "a")
        b, _ = make_node(network, "b")
        network.send(a.node_id, b.node_id, Ping(1))
        engine.run_until_idle()
        kinds = [record.kind for record in network.trace]
        assert kinds == ["send", "deliver"]
        assert network.trace.messages_of_type("Ping")

    def test_unhandled_messages_counted(self):
        engine, network = make_network()
        a, _ = make_node(network, "a")
        b = SimNode(NodeId("bare", 1), network)  # no handlers at all
        network.send(a.node_id, b.node_id, Ping(1))
        engine.run_until_idle()
        assert b.unhandled == 1
