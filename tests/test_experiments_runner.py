"""Orchestrator tests: registry completeness, parallel-vs-serial
determinism of the JSON artifacts, and `repro bench` CLI handling."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.common.errors import ConfigurationError
from repro.experiments.params import ExperimentParams
from repro.experiments.registry import (
    REGISTRY,
    TIER_NAMES,
    RunContext,
    ScenarioSpec,
    TierConfig,
    get_scenario,
    register,
    scenario_ids,
)
from repro.experiments.reporting import (
    ARTIFACT_SCHEMA,
    encode_artifact,
    json_safe,
    load_artifact,
    write_artifact,
)
from repro.experiments.runner import (
    build_units,
    replicate_seed,
    run_scenarios,
    write_artifacts,
)

#: Cheap but structurally different scenarios for runner-level tests.
FAST_IDS = ("fig1_hyparview_reference", "fig1c_failure50")
#: Tiny override so runner tests stay in the sub-second range per cell.
TINY = dict(n=32, messages=2)


class TestRegistry:
    def test_every_scenario_resolves_and_has_all_tiers(self):
        assert len(REGISTRY) >= 15
        for scenario_id in scenario_ids():
            spec = get_scenario(scenario_id)
            assert spec.id == scenario_id
            for tier in TIER_NAMES:
                config = spec.tier(tier)
                assert config.n >= 2
            assert callable(spec.run)
            assert callable(spec.render)

    def test_tier_ordering_smoke_is_cheapest(self):
        for scenario_id in scenario_ids():
            spec = get_scenario(scenario_id)
            assert spec.tier("smoke").n < spec.tier("paper").n
            assert spec.tier("paper").paper_params

    def test_unknown_scenario_raises_with_catalogue(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("not_a_scenario")

    def test_unknown_tier_raises(self):
        spec = get_scenario("fig2_reliability")
        with pytest.raises(ConfigurationError, match="no 'nope' tier"):
            spec.tier("nope")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("fig2_reliability")
        with pytest.raises(ConfigurationError, match="duplicate"):
            register(spec)

    def test_every_scenario_smoke_runs(self):
        """Every registry entry executes end-to-end at a tiny scale and
        produces a JSON-encodable, render-able, check-passing result."""
        runs = run_scenarios(scenario_ids(), "smoke", workers=1, **TINY)
        for scenario_id, run in runs.items():
            assert run.replicates, scenario_id
            text = run.render()
            assert text.strip(), scenario_id
            run.check()  # sanity invariants hold at any scale
            json.loads(encode_artifact(run.artifact()))


class TestRunContext:
    def test_scaled_params_from_config(self):
        context = RunContext(
            scenario_id="x", tier="smoke",
            config=TierConfig(n=50, stabilization_cycles=7),
            replicate=0, seed=123,
        )
        params = context.params()
        assert params.n == 50
        assert params.seed == 123
        assert params.stabilization_cycles == 7

    def test_paper_params_flag(self):
        context = RunContext(
            scenario_id="x", tier="paper",
            config=TierConfig(n=10_000, paper_params=True),
            replicate=0, seed=9,
        )
        params = context.params()
        assert params == ExperimentParams.paper(n=10_000, seed=9)

    def test_extra_options_reach_the_run(self):
        config = TierConfig(n=50, extra={"fractions": (0.3,)})
        context = RunContext("x", "smoke", config, 0, 1)
        assert context.option("fractions", None) == (0.3,)
        assert context.option("absent", "default") == "default"


class TestSeedDerivation:
    def test_replicate_seeds_are_deterministic(self):
        a = replicate_seed(42, "fig2_reliability", 0)
        b = replicate_seed(42, "fig2_reliability", 0)
        assert a == b

    def test_replicate_seeds_are_distinct_across_cells(self):
        seeds = {
            replicate_seed(root, scenario, replicate)
            for root in (1, 2)
            for scenario in ("fig2_reliability", "churn")
            for replicate in range(3)
        }
        assert len(seeds) == 12

    def test_units_carry_per_replicate_seeds(self):
        units = build_units(["churn"], "smoke", root_seed=7, replicates=3, cells=False)
        assert [unit.replicate for unit in units] == [0, 1, 2]
        resolved = [unit.resolve()[1] for unit in units]
        assert len({context.seed for context in resolved}) == 3

    def test_cell_units_share_their_replicate_seed(self):
        # churn decomposes into one cell per protocol; every cell of one
        # replicate must observe the replicate's seed (the monolithic run
        # and the sharded cells see identical randomness).
        units = build_units(["churn"], "smoke", root_seed=7, replicates=2)
        assert [unit.replicate for unit in units] == [0, 0, 1, 1]
        assert all(unit.cell is not None for unit in units)
        seeds = {}
        for unit in units:
            seeds.setdefault(unit.replicate, set()).add(unit.resolve()[1].seed)
        assert all(len(per_replicate) == 1 for per_replicate in seeds.values())
        assert seeds[0] != seeds[1]


class TestParallelDeterminism:
    def test_parallel_equals_serial_byte_for_byte(self, tmp_path):
        serial = run_scenarios(FAST_IDS, "smoke", workers=1, replicates=2, **TINY)
        parallel = run_scenarios(FAST_IDS, "smoke", workers=2, replicates=2, **TINY)
        serial_paths = write_artifacts(serial, tmp_path / "serial")
        parallel_paths = write_artifacts(parallel, tmp_path / "parallel")
        assert [p.name for p in serial_paths] == [p.name for p in parallel_paths]
        for a, b in zip(serial_paths, parallel_paths):
            assert a.read_bytes() == b.read_bytes()

    def test_replicates_differ_but_are_reproducible(self):
        first = run_scenarios(["fig1c_failure50"], "smoke", workers=1, replicates=2, **TINY)
        again = run_scenarios(["fig1c_failure50"], "smoke", workers=1, replicates=2, **TINY)
        run = first["fig1c_failure50"]
        assert run.replicates[0]["seed"] != run.replicates[1]["seed"]
        assert encode_artifact(run.artifact()) == encode_artifact(
            again["fig1c_failure50"].artifact()
        )

    def test_root_seed_changes_results(self):
        a = run_scenarios(["fig1c_failure50"], "smoke", workers=1, root_seed=1, **TINY)
        b = run_scenarios(["fig1c_failure50"], "smoke", workers=1, root_seed=2, **TINY)
        assert (
            a["fig1c_failure50"].replicates[0]["seed"]
            != b["fig1c_failure50"].replicates[0]["seed"]
        )

    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            run_scenarios(FAST_IDS, "smoke", workers=0)

    def test_sharded_kernel_matches_single_shard_across_matrix(self):
        """fig2 under --kernel sharded --shards 2 is byte-identical to the
        single-shard run in every (workers, cells, cache) combination —
        kernel choice may never reach an artifact byte."""
        reference = encode_artifact(
            run_scenarios(["fig2_reliability"], "smoke", workers=1)[
                "fig2_reliability"
            ].artifact()
        )
        for workers in (1, 2):
            for cells in (True, False):
                for snapshot_cache in (True, False):
                    runs = run_scenarios(
                        ["fig2_reliability"], "smoke",
                        workers=workers, cells=cells,
                        snapshot_cache=snapshot_cache,
                        kernel="sharded", shards=2,
                    )
                    encoded = encode_artifact(runs["fig2_reliability"].artifact())
                    assert encoded == reference, (workers, cells, snapshot_cache)


class TestArtifacts:
    def test_round_trip_and_schema_guard(self, tmp_path):
        runs = run_scenarios(["fig1_hyparview_reference"], "smoke", workers=1, **TINY)
        path = write_artifact(tmp_path, runs["fig1_hyparview_reference"].artifact())
        assert path.name == "BENCH_fig1_hyparview_reference.json"
        loaded = load_artifact(path)
        assert loaded["schema"] == ARTIFACT_SCHEMA
        assert loaded["scenario"] == "fig1_hyparview_reference"
        assert loaded["config"]["n"] == TINY["n"]

        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text('{"schema": "other/9", "scenario": "bogus"}')
        with pytest.raises(ValueError, match="unsupported artifact schema"):
            load_artifact(bogus)

    def test_json_safe_conversions(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Point:
            x: int
            series: tuple

        converted = json_safe({1: Point(3, (1.0, float("nan"))), "s": {2, 1}})
        assert converted == {"1": {"x": 3, "series": [1.0, None]}, "s": [1, 2]}

    def test_artifact_contains_no_timestamps(self):
        runs = run_scenarios(["fig1_hyparview_reference"], "smoke", workers=1, **TINY)
        text = encode_artifact(runs["fig1_hyparview_reference"].artifact())
        for forbidden in ("time", "date", "duration", "elapsed", "host"):
            assert forbidden not in text.lower()


class TestBenchCli:
    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.tier == "smoke"
        assert args.workers == 1
        assert args.scenario is None
        assert args.seed == 42

    def test_tier_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--tier", "huge"])

    def test_scenario_is_repeatable(self):
        args = build_parser().parse_args(
            ["bench", "--scenario", "churn", "--scenario", "overhead"]
        )
        assert args.scenario == ["churn", "overhead"]

    def test_list_prints_catalogue(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for scenario_id in scenario_ids():
            assert scenario_id in out

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert main(["bench", "--scenario", "nope", "--no-artifacts"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "Traceback" not in err

    def test_bench_run_writes_artifacts(self, capsys, tmp_path):
        code = main(
            [
                "bench",
                "--tier", "smoke",
                "--workers", "2",
                "--scenario", "fig1_hyparview_reference",
                "--scenario", "fig1c_failure50",
                "--n", "32",
                "--messages", "2",
                "--check",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "===== fig1_hyparview_reference =====" in out
        written = sorted(p.name for p in tmp_path.iterdir())
        assert written == [
            "BENCH_fig1_hyparview_reference.json",
            "BENCH_fig1c_failure50.json",
            # Wall-clock records ride along, in separate files, so the
            # BENCH_* family stays deterministic.
            "TIMINGS_fig1_hyparview_reference.json",
            "TIMINGS_fig1c_failure50.json",
        ]

    def test_cell_and_cache_flags(self, capsys, tmp_path):
        """--cells off / --no-snapshot-cache run the same scenarios and
        write byte-identical artifacts (the determinism contract)."""
        base_args = [
            "bench", "--scenario", "fig2_reliability",
            "--n", "32", "--messages", "2",
        ]
        assert main(base_args + ["--out", str(tmp_path / "a")]) == 0
        assert main(base_args + ["--cells", "off", "--out", str(tmp_path / "b")]) == 0
        assert main(base_args + ["--no-snapshot-cache", "--out", str(tmp_path / "c")]) == 0
        name = "BENCH_fig2_reliability.json"
        reference = (tmp_path / "a" / name).read_bytes()
        assert (tmp_path / "b" / name).read_bytes() == reference
        assert (tmp_path / "c" / name).read_bytes() == reference

    def test_profile_mode(self, capsys):
        assert main(
            ["bench", "--profile", "--scenario", "fig1_hyparview_reference",
             "--n", "32", "--messages", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "profiling fig1_hyparview_reference" in out
        assert "cumulative" in out

    def test_no_artifacts_flag(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["bench", "--scenario", "fig1_hyparview_reference",
             "--n", "32", "--messages", "2", "--no-artifacts"]
        ) == 0
        assert not (tmp_path / "benchmarks").exists()
