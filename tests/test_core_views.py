"""Unit and property tests for the bounded view container."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ProtocolError
from repro.common.ids import NodeId
from repro.core.views import BoundedView


def nid(i: int) -> NodeId:
    return NodeId(f"n{i}", 1)


class TestBasics:
    def test_add_contains_len(self):
        view = BoundedView(3)
        view.add(nid(1))
        assert nid(1) in view
        assert len(view) == 1
        assert not view.is_full
        assert view.free_slots == 2

    def test_capacity_validation(self):
        with pytest.raises(ProtocolError):
            BoundedView(0)

    def test_duplicate_add_rejected(self):
        view = BoundedView(3, [nid(1)])
        with pytest.raises(ProtocolError):
            view.add(nid(1))

    def test_overflow_rejected(self):
        view = BoundedView(2, [nid(1), nid(2)])
        assert view.is_full
        with pytest.raises(ProtocolError):
            view.add(nid(3))

    def test_remove(self):
        view = BoundedView(3, [nid(1), nid(2)])
        view.remove(nid(1))
        assert nid(1) not in view
        assert nid(2) in view

    def test_remove_absent_raises(self):
        view = BoundedView(3)
        with pytest.raises(ProtocolError):
            view.remove(nid(1))

    def test_discard(self):
        view = BoundedView(3, [nid(1)])
        assert view.discard(nid(1)) is True
        assert view.discard(nid(1)) is False

    def test_members_snapshot_is_immutable_copy(self):
        view = BoundedView(3, [nid(1)])
        snapshot = view.members()
        view.add(nid(2))
        assert snapshot == (nid(1),)

    def test_iteration(self):
        view = BoundedView(5, [nid(1), nid(2), nid(3)])
        assert sorted(view) == sorted([nid(1), nid(2), nid(3)])


class TestRandomSelection:
    def test_random_member_empty(self):
        assert BoundedView(3).random_member(random.Random(0)) is None

    def test_random_member_uniformish(self):
        view = BoundedView(3, [nid(1), nid(2), nid(3)])
        rng = random.Random(0)
        seen = {view.random_member(rng) for _ in range(100)}
        assert seen == {nid(1), nid(2), nid(3)}

    def test_random_member_respects_exclude(self):
        view = BoundedView(3, [nid(1), nid(2)])
        rng = random.Random(0)
        for _ in range(20):
            assert view.random_member(rng, exclude=(nid(1),)) == nid(2)

    def test_random_member_all_excluded(self):
        view = BoundedView(3, [nid(1)])
        assert view.random_member(random.Random(0), exclude=(nid(1),)) is None

    def test_sample_distinct(self):
        view = BoundedView(10, [nid(i) for i in range(10)])
        sample = view.sample(random.Random(0), 5)
        assert len(sample) == 5
        assert len(set(sample)) == 5

    def test_sample_larger_than_view(self):
        view = BoundedView(10, [nid(1), nid(2)])
        sample = view.sample(random.Random(0), 5)
        assert sorted(sample) == sorted([nid(1), nid(2)])

    def test_sample_zero(self):
        view = BoundedView(3, [nid(1)])
        assert view.sample(random.Random(0), 0) == []

    def test_sample_with_exclusions(self):
        view = BoundedView(5, [nid(i) for i in range(5)])
        sample = view.sample(random.Random(0), 5, exclude=(nid(0), nid(1)))
        assert set(sample) == {nid(2), nid(3), nid(4)}


@st.composite
def view_operations(draw):
    """A random sequence of add/remove/discard operations."""
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["add", "remove", "discard"]), st.integers(0, 15)),
            max_size=60,
        )
    )
    capacity = draw(st.integers(min_value=1, max_value=8))
    return capacity, ops


class TestInvariantsProperty:
    @settings(max_examples=200)
    @given(view_operations())
    def test_view_invariants_under_random_operations(self, scenario):
        """Whatever the operation order: no duplicates, size <= capacity,
        membership index consistent with the item list."""
        capacity, ops = scenario
        view = BoundedView(capacity)
        model = set()
        for op, i in ops:
            node = nid(i)
            if op == "add":
                if node in model or len(model) >= capacity:
                    with pytest.raises(ProtocolError):
                        view.add(node)
                else:
                    view.add(node)
                    model.add(node)
            elif op == "remove":
                if node in model:
                    view.remove(node)
                    model.remove(node)
                else:
                    with pytest.raises(ProtocolError):
                        view.remove(node)
            else:
                assert view.discard(node) == (node in model)
                model.discard(node)
            assert len(view) == len(model)
            assert set(view.members()) == model
            assert len(set(view.members())) == len(view.members())
            assert len(view) <= capacity
            for member in model:
                assert member in view

    @settings(max_examples=100)
    @given(
        st.sets(st.integers(0, 30), min_size=1, max_size=20),
        st.integers(0, 25),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_sample_properties(self, members, k, seed):
        nodes = [nid(i) for i in members]
        view = BoundedView(len(nodes), nodes)
        sample = view.sample(random.Random(seed), k)
        assert len(sample) == min(k, len(nodes))
        assert len(set(sample)) == len(sample)
        assert set(sample) <= set(nodes)
