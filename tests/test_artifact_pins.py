"""Pinned SHA-256 hashes of the smoke-tier ``BENCH_*.json`` artifacts.

These hashes were recorded from the PR-2 codebase (mixed-tuple heapq
kernel, full pickled ``random.Random`` snapshot state) and pin the
byte-identity acceptance criterion of the bucket-queue/compact-RNG
rework: the simulation substrate may change, the measured artifacts may
not — ever, by a single byte.

A cheap three-scenario subset runs in the regular suite; the full
fifteen-scenario sweep is slow-marked (a few minutes) and runs with the
slow tier of CI.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.experiments.reporting import encode_artifact
from repro.experiments.runner import run_scenarios

#: sha256 of every smoke-tier artifact at root seed 42, recorded at PR 2.
PR2_SMOKE_SHA256 = {
    "ablation_flood_resend": "f9f6d70e935d9600bc1efaf8bf788dbd111fb6e897cc161508f7e1530e2f0b38",
    "ablation_passive_size": "79a553cc0d30b6c9004e1225ad27583ee08f81c89215293ddbb59ab38bbcd694",
    "ablation_plumtree": "29ad4100ee07b4495e96f62528b909bdfed5db68d7052d4d128d982f667d8f5c",
    "ablation_shuffle_ttl": "3ed1de51243d727c9d6c216dd8348a29937251133e8a540cf274fceaeeae9b24",
    "churn": "0765852f3e5922d91faf35c95974af2314177614110f2f1074dbf4bf48a06594",
    "fig1_hyparview_reference": "c8d7e26bcce14fe1b5ba2807334d2b5f547e78bc2988fcf0b5ea0ea680d9c928",
    "fig1a_cyclon_fanout": "ecd2e364928a0ebf6b4a7aad8857bf82e81934ad82aa62222b8338ef404f5333",
    "fig1b_scamp_fanout": "652cc0e5030789b9cb958a4bd7b0f4df9b3d20befbfc087547d89bfb2638487e",
    "fig1c_failure50": "b2fbb79117e4078b11f1ad764cbbb8a30c8815bd761acc23efa02fa9c0fa876e",
    "fig2_reliability": "de25beb4f231d442ef161991735278c6c27abdac6d9f49869342b43b9a8c7838",
    "fig3_recovery": "e49f6e30b97acc2ca5cbfc971ea8f4d1bef8c3571cb54cb00a4c94e2cca6f327",
    "fig4_healing": "5d915cce24b53bcc7caad3d881acc17a838253ced679ed91d59b5fb5808f98e2",
    "fig5_indegree": "34bda314256aa0b0667445eefbf7a0ac18dd924a91596d0eb7445ca66aaa1ce3",
    "overhead": "bdce9df4930b2b56d5e32b65d3c37345af1189f1ef1e880d005bf41453fb7a3b",
    "table1_graph": "41dea422b92627b92f08873dbc0d51e247f233dc39c0be355e520a9269e9f2aa",
}

#: sha256 of the fault-injection family's smoke artifacts at root seed 42,
#: recorded when the ``repro.faults`` subsystem landed (PR 4).  These pin
#: the fault scenarios' determinism the same way the PR-2 hashes pin the
#: figure scenarios: any behavioural drift in the fault drivers, the link
#: rules, the adversary filters or the quantised-tick engine shows up here.
PR4_FAULT_SMOKE_SHA256 = {
    "faults_adversary": "2e883a785c5dbf64cf7ffa00d933a26f6c577a5f80954d9259ee5d0d88b81e42",
    "faults_cascade": "d946b002a039d3afe5ff0815d5627cb13120e4d0dee9756bbcb3652440b723d3",
    "faults_churn_trace": "1579b16a8966b81e67242929f4d1d770f629fdcd7ba9d52b3fd898a0d8cce9ef",
    "faults_flash_crowd": "3b2ad453ac8023e2bc16cf00db9d54200a98d176b6e06eace884482bb9847fd6",
    "faults_partition_heal": "6913316465f5eeae3c46a67224cbdec3d3b8d1d38da11bf7f4792897a0f6382f",
    "faults_wan_jitter": "9ed2fd49b8ac7f58b80c826d2e278699a3c5db0702cc00dd36da15f2d59ecfea",
}

#: sha256 of the reliable-delivery family's smoke artifacts at root seed
#: 42, recorded when the ack+retransmit stacks and the timer wheel landed
#: (PR 5).  They pin the reliable gossip layer, the wheel's merge order
#: against bucket events, and the fault plans the scenarios replay.
PR5_RELIABLE_SMOKE_SHA256 = {
    "reliable_churn": "9b58d30e756c0978b5189fc3c5e34e15096bbde2c28c9d2b6b3e3f2fd7227ae7",
    "reliable_loss": "eb2f139506d7f555d5e5a9dd66037dc13a5f17d563b0fd0fe23b40c16262a5b9",
    "reliable_stress": "cc90920605729fa6370a9659e413137bb4ba312b19fa8ae04f50757d0fa07ff1",
}

#: sha256 of the Byzantine-broadcast family's smoke artifacts at root
#: seed 42, recorded when the BRB layer landed (PR 7).  They pin the
#: SEND→ECHO→READY quorum machinery, the sampled-mode RNG draws, the
#: Byzantine sender hooks (mutation/equivocation) and the value-judged
#: measurement pipeline.
PR7_BYZ_SMOKE_SHA256 = {
    "byz_adversary_fraction": "65787fe933e6c0cd587970915ab0a77ab909d9d1a690b2fcc2f94f80b71e3ada",
    "byz_churn": "f9696d2b17cab75fcb4655a4a1d787b76b9c25b463e8e34eae9ce669b6a6c73e",
    "byz_equivocation": "1299710d53979bd1de5f94a86d3cf1c120780fc60491fd896f8c0a78d3bc3184",
}

#: sha256 of the topology family's smoke artifacts at root seed 42,
#: recorded when X-BOT and the zoned RTT world model landed (PR 10).
#: They pin the zone assignment and pair-base RTT draws, the oracle's
#: jitter-free link pricing, the 4-node swap state machine's message
#: order and the quantised-tick engine under continuous per-hop jitter.
PR10_TOPO_SMOKE_SHA256 = {
    "topo_convergence": "94f6bf53ef5c973f8838e8f76d8e592fe7a3273b0e26dca71d09efb6d2f48e78",
    "topo_latency": "4dfbc2c6fed484bb442dd4906e9c7413112fbfdeb76dc855e3d5f29b793d6b37",
}

#: Scenarios cheap enough to pin on every test run (seconds, not minutes).
FAST_SUBSET = ("fig1_hyparview_reference", "fig1c_failure50", "ablation_flood_resend")

#: The cheap fault-scenario pins that run in the regular suite.
FAST_FAULT_SUBSET = ("faults_partition_heal", "faults_wan_jitter")

#: The reliable-delivery pin that runs in the regular suite.
FAST_RELIABLE_SUBSET = ("reliable_loss",)

#: The cheap Byzantine pin that runs in the regular suite (two cells).
FAST_BYZ_SUBSET = ("byz_equivocation",)

#: The cheap topology pin that runs in the regular suite (two cells).
FAST_TOPO_SUBSET = ("topo_convergence",)

#: The sharded-kernel pin (PR 8): fig2 under ``--kernel sharded --shards 2``
#: must hash to the *same* PR-2 value as the single-shard run — the sharded
#: kernel is an exact-order coordinator, so kernel choice can never show up
#: in an artifact byte.
SHARDED_PIN_SCENARIO = "fig2_reliability"


def _hashes(scenario_ids, **overrides) -> dict[str, str]:
    runs = run_scenarios(list(scenario_ids), "smoke", workers=1, **overrides)
    return {
        scenario_id: hashlib.sha256(encode_artifact(run.artifact()).encode()).hexdigest()
        for scenario_id, run in runs.items()
    }


def test_fast_subset_matches_pr2_artifacts():
    assert _hashes(FAST_SUBSET) == {k: PR2_SMOKE_SHA256[k] for k in FAST_SUBSET}


def test_fast_fault_subset_matches_pr4_artifacts():
    assert _hashes(FAST_FAULT_SUBSET) == {
        k: PR4_FAULT_SMOKE_SHA256[k] for k in FAST_FAULT_SUBSET
    }


def test_fast_reliable_subset_matches_pr5_artifacts():
    assert _hashes(FAST_RELIABLE_SUBSET) == {
        k: PR5_RELIABLE_SMOKE_SHA256[k] for k in FAST_RELIABLE_SUBSET
    }


def test_fast_byz_subset_matches_pr7_artifacts():
    assert _hashes(FAST_BYZ_SUBSET) == {
        k: PR7_BYZ_SMOKE_SHA256[k] for k in FAST_BYZ_SUBSET
    }


def test_fast_topo_subset_matches_pr10_artifacts():
    assert _hashes(FAST_TOPO_SUBSET) == {
        k: PR10_TOPO_SMOKE_SHA256[k] for k in FAST_TOPO_SUBSET
    }


def test_sharded_kernel_fig2_matches_single_shard_pin():
    assert _hashes((SHARDED_PIN_SCENARIO,), kernel="sharded", shards=2) == {
        SHARDED_PIN_SCENARIO: PR2_SMOKE_SHA256[SHARDED_PIN_SCENARIO]
    }


def test_tracing_on_fig2_matches_pin():
    # Dissemination tracing (PR 9) is a pure observer: running fig2 with
    # the collector active must hash to the same PR-2 value — tracing can
    # never perturb a benchmark artifact byte or an RNG draw.
    traces: dict[str, list] = {}
    assert _hashes(("fig2_reliability",), trace=True, traces=traces) == {
        "fig2_reliability": PR2_SMOKE_SHA256["fig2_reliability"]
    }
    assert any(entry["segments"] for entry in traces["fig2_reliability"])


@pytest.mark.slow
def test_all_fifteen_smoke_artifacts_match_pr2():
    assert _hashes(PR2_SMOKE_SHA256) == PR2_SMOKE_SHA256


@pytest.mark.slow
def test_all_fault_smoke_artifacts_match_pr4():
    assert _hashes(PR4_FAULT_SMOKE_SHA256) == PR4_FAULT_SMOKE_SHA256


@pytest.mark.slow
def test_all_reliable_smoke_artifacts_match_pr5():
    assert _hashes(PR5_RELIABLE_SMOKE_SHA256) == PR5_RELIABLE_SMOKE_SHA256


@pytest.mark.slow
def test_all_byz_smoke_artifacts_match_pr7():
    assert _hashes(PR7_BYZ_SMOKE_SHA256) == PR7_BYZ_SMOKE_SHA256


@pytest.mark.slow
def test_all_topo_smoke_artifacts_match_pr10():
    assert _hashes(PR10_TOPO_SMOKE_SHA256) == PR10_TOPO_SMOKE_SHA256
