"""Tests for the experiment scenario harness."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario


def small_params(n=60, cycles=5, seed=42):
    return ExperimentParams.scaled(n, seed=seed, stabilization_cycles=cycles)


class TestConstruction:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario("chord", small_params())

    def test_all_protocols_build(self):
        for protocol in ("hyparview", "cyclon", "cyclon-acked", "scamp", "plumtree"):
            scenario = Scenario(protocol, small_params())
            scenario.build_overlay()
            assert len(scenario.alive_ids()) == 60

    def test_double_build_rejected(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        with pytest.raises(SimulationError):
            scenario.build_overlay()

    def test_deterministic_given_seed(self):
        def fingerprint(seed):
            scenario = Scenario("hyparview", small_params(seed=seed))
            scenario.build_overlay()
            scenario.run_cycles(3)
            return tuple(
                tuple(sorted(str(p) for p in scenario.membership(n).active_members()))
                for n in scenario.node_ids
            )

        assert fingerprint(7) == fingerprint(7)
        assert fingerprint(7) != fingerprint(8)


class TestFailureInjection:
    def test_fail_fraction_counts(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        victims = scenario.fail_fraction(0.25)
        assert len(victims) == 15
        assert len(scenario.alive_ids()) == 45
        assert scenario.population == frozenset(scenario.alive_ids())

    def test_fail_fraction_validation(self):
        scenario = Scenario("hyparview", small_params())
        with pytest.raises(ConfigurationError):
            scenario.fail_fraction(1.0)
        with pytest.raises(ConfigurationError):
            scenario.fail_fraction(-0.1)

    def test_fail_fraction_of_remaining(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        scenario.fail_fraction(0.5)
        scenario.fail_fraction(0.5)
        assert len(scenario.alive_ids()) == 15


class TestMeasurement:
    def test_send_broadcast_returns_summary(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        scenario.stabilize()
        summary = scenario.send_broadcast()
        assert summary.population_size == 60
        assert summary.reliability == 1.0

    def test_paced_broadcasts_preserve_send_order(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        scenario.stabilize()
        summaries = scenario.send_paced_broadcasts(5, interval=0.05)
        sent = [s.sent_at for s in summaries]
        assert sent == sorted(sent)
        assert len({s.message_id for s in summaries}) == 5

    def test_snapshot_alive_only_filter(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        scenario.fail_fraction(0.3)
        alive_snap = scenario.snapshot(alive_only=True)
        full_snap = scenario.snapshot(alive_only=False)
        assert alive_snap.node_count == 42
        assert full_snap.node_count == 60


class TestClone:
    def test_clone_is_isolated(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        scenario.stabilize()
        clone = scenario.clone()
        clone.fail_fraction(0.5)
        assert len(scenario.alive_ids()) == 60
        assert len(clone.alive_ids()) == 30
        # Mutating clone protocol state leaves the original untouched.
        node = clone.node_ids[0]
        clone.membership(node).passive.discard(
            next(iter(clone.membership(node).passive), None)
        ) if len(clone.membership(node).passive) else None
        assert scenario.snapshot().edge_count > 0

    def test_clones_replay_identically(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        scenario.stabilize()
        first = [s.reliability for s in scenario.clone().send_broadcasts(3)]
        second = [s.reliability for s in scenario.clone().send_broadcasts(3)]
        assert first == second

    def test_clone_with_pending_events_rejected(self):
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        origin = scenario.alive_ids()[0]
        scenario.broadcast_layer(origin).broadcast(None)  # in flight
        with pytest.raises(SimulationError):
            scenario.clone()
        scenario.drain()


class TestReviveIncarnations:
    def test_revived_origin_never_reuses_message_ids(self):
        """A restarted process must not re-mint its predecessor's broadcast
        ids (regression: churn runs crashed the tracker with "duplicate
        broadcast id" when a revived node broadcast again)."""
        scenario = Scenario("hyparview", small_params())
        scenario.build_overlay()
        scenario.stabilize()
        origin = scenario.alive_ids()[0]
        before = scenario.send_broadcast(origin)
        scenario.fail_nodes([origin])
        scenario.drain()
        scenario.revive_node(origin)
        after = scenario.send_broadcast(origin)  # raised before the fix
        assert before.message_id != after.message_id
        assert after.message_id.sequence >= 1 << 32
