"""Shared fixtures: a small wired world for protocol unit tests.

The ``World`` helper itself lives in :mod:`repro.testing` so test modules
can import it directly (``from repro.testing import World``) without
relying on pytest's conftest path magic.
"""

from __future__ import annotations

import random

import pytest

from repro.testing import World

__all__ = ["World"]


def pytest_pycollect_makeitem(collector, name, obj):
    # The repo-wide config collects bench_* functions for the benchmark
    # harness; inside tests/ such names are imported helpers (e.g.
    # ``bench_params``), never benchmarks — skip them.
    if name.startswith("bench_"):
        return []
    return None


@pytest.fixture
def world() -> World:
    return World()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)
