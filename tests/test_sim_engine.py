"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Engine, PeriodicTask


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, fired.append, "c")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        engine.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = Engine()
        fired = []
        for label in "abcde":
            engine.schedule(1.0, fired.append, label)
        engine.run_until_idle()
        assert fired == list("abcde")

    def test_time_advances_to_event_timestamps(self):
        engine = Engine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.schedule(7.25, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [2.5, 7.25]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append("outer")
            engine.schedule(1.0, lambda: fired.append("inner"))

        engine.schedule(1.0, outer)
        engine.run_until_idle()
        assert fired == ["outer", "inner"]
        assert engine.now == 2.0

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=50))
    def test_firing_order_is_sorted_property(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run_until_idle()
        assert fired == sorted(delays)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        handle.cancel()
        assert handle.cancelled
        engine.run_until_idle()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        handle.cancel()  # must not raise

    def test_cancelled_events_do_not_count_as_fired(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.run_until_idle() == 1


class TestRunUntil:
    def test_run_until_stops_at_deadline(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(5.0, fired.append, "b")
        engine.run_until(3.0)
        assert fired == ["a"]
        assert engine.now == 3.0
        engine.run_until_idle()
        assert fired == ["a", "b"]

    def test_run_until_inclusive_of_boundary(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, fired.append, "edge")
        engine.run_until(3.0)
        assert fired == ["edge"]

    def test_run_until_past_deadline_rejected(self):
        engine = Engine(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.run_until(1.0)

    def test_run_for(self):
        engine = Engine()
        engine.run_for(10.0)
        assert engine.now == 10.0


class TestRunawayGuard:
    def test_max_events_guard_trips(self):
        engine = Engine()

        def rescheduler():
            engine.schedule(0.1, rescheduler)

        engine.schedule(0.1, rescheduler)
        with pytest.raises(SimulationError):
            engine.run_until_idle(max_events=100)

    def test_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        assert engine.processed == 5


class TestPeriodicTask:
    def test_fires_every_period(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now))
        task.start()
        engine.run_until(5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_ticks(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now))
        task.start()
        engine.run_until(2.5)
        task.stop()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_jitter_delays_first_tick(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now), jitter=0.5)
        task.start()
        engine.run_until(2.0)
        assert ticks == [1.5]

    def test_callback_may_stop_task(self):
        engine = Engine()
        ticks = []

        def tick():
            ticks.append(engine.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(engine, 1.0, tick)
        task.start()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Engine(), 0.0, lambda: None)

    def test_double_start_is_noop(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(1))
        task.start()
        task.start()
        engine.run_until(1.5)
        assert ticks == [1]


class TestPostFastPath:
    def test_post_and_schedule_interleave_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, fired.append, "timer")
        engine.post(1.0, fired.append, "msg-early")
        engine.post(3.0, fired.append, "msg-late")
        engine.run_until_idle()
        assert fired == ["msg-early", "timer", "msg-late"]

    def test_post_same_time_fifo_with_schedule(self):
        engine = Engine()
        fired = []
        engine.post(1.0, fired.append, "a")
        engine.schedule(1.0, fired.append, "b")
        engine.post(1.0, fired.append, "c")
        engine.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_post_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().post(-0.1, lambda: None)

    def test_post_at_in_past_rejected(self):
        engine = Engine()
        engine.post(1.0, lambda: None)
        engine.run_until_idle()
        with pytest.raises(SimulationError):
            engine.post_at(0.5, lambda: None)

    def test_posted_events_respect_run_until_and_step(self):
        engine = Engine()
        fired = []
        engine.post(1.0, fired.append, "a")
        engine.post(2.0, fired.append, "b")
        assert engine.step() is True
        assert fired == ["a"]
        engine.run_until(5.0)
        assert fired == ["a", "b"]
        assert engine.processed == 2


class TestCancelledAccounting:
    def test_live_pending_excludes_cancelled(self):
        engine = Engine()
        handles = [engine.schedule(1.0, lambda: None) for _ in range(10)]
        engine.post(1.0, lambda: None)
        assert engine.pending == 11
        assert engine.live_pending == 11
        for handle in handles[:4]:
            handle.cancel()
        assert engine.pending == 11
        assert engine.live_pending == 7
        assert engine.cancelled_pending == 4

    def test_double_cancel_counted_once(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.cancelled_pending == 1
        assert engine.live_pending == 0

    def test_cancel_after_fire_not_counted(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        handle.cancel()
        assert engine.cancelled_pending == 0
        assert engine.pending == 0

    def test_popping_cancelled_events_decrements_counter(self):
        engine = Engine()
        keep = []
        handle = engine.schedule(1.0, keep.append, "x")
        handle.cancel()
        engine.schedule(2.0, keep.append, "y")
        engine.run_until_idle()
        assert keep == ["y"]
        assert engine.cancelled_pending == 0
        assert engine.live_pending == 0


class TestHeapCompaction:
    def test_compact_reclaims_cancelled_events(self):
        engine = Engine()
        handles = [engine.schedule(1.0 + i, lambda: None) for i in range(100)]
        for handle in handles:
            handle.cancel()
        # Auto-compaction fires once cancelled events exceed both the
        # floor and half the queue: the heap must physically shrink, and
        # the books must balance (pending = live + cancelled).
        assert engine.pending < 100
        assert engine.live_pending == 0
        assert engine.pending == engine.cancelled_pending
        engine.compact()
        assert engine.pending == 0

    def test_compaction_preserves_live_events_and_order(self):
        engine = Engine()
        fired = []
        live = [engine.schedule(10.0 + i, fired.append, i) for i in range(5)]
        doomed = [engine.schedule(1.0 + i, fired.append, 1000 + i) for i in range(200)]
        for handle in doomed:
            handle.cancel()
        assert engine.pending < len(live) + len(doomed)  # auto-compacted
        assert engine.live_pending == len(live)
        engine.run_until_idle()
        assert fired == [0, 1, 2, 3, 4]

    def test_small_queues_not_compacted(self):
        engine = Engine()
        handles = [engine.schedule(1.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the floor the cancelled events stay parked (lazy removal).
        assert engine.pending == 10
        assert engine.live_pending == 0
        assert engine.compact() == 10
        assert engine.pending == 0

    def test_explicit_compact_mid_run(self):
        engine = Engine()
        fired = []

        def cancel_and_compact():
            for handle in doomed:
                handle.cancel()
            engine.compact()
            fired.append("compacted")

        engine.schedule(1.0, cancel_and_compact)
        doomed = [engine.schedule(5.0, fired.append, "doomed") for _ in range(50)]
        engine.schedule(9.0, fired.append, "tail")
        engine.run_until_idle()
        assert fired == ["compacted", "tail"]
