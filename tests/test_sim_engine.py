"""Tests for the discrete-event engine."""

import heapq
import pickle
from itertools import count

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Engine, PeriodicTask, events_fired_total


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, fired.append, "c")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        engine.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = Engine()
        fired = []
        for label in "abcde":
            engine.schedule(1.0, fired.append, label)
        engine.run_until_idle()
        assert fired == list("abcde")

    def test_time_advances_to_event_timestamps(self):
        engine = Engine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.schedule(7.25, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [2.5, 7.25]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append("outer")
            engine.schedule(1.0, lambda: fired.append("inner"))

        engine.schedule(1.0, outer)
        engine.run_until_idle()
        assert fired == ["outer", "inner"]
        assert engine.now == 2.0

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=50))
    def test_firing_order_is_sorted_property(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run_until_idle()
        assert fired == sorted(delays)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        handle.cancel()
        assert handle.cancelled
        engine.run_until_idle()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        handle.cancel()  # must not raise

    def test_cancelled_events_do_not_count_as_fired(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.run_until_idle() == 1


class TestRunUntil:
    def test_run_until_stops_at_deadline(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(5.0, fired.append, "b")
        engine.run_until(3.0)
        assert fired == ["a"]
        assert engine.now == 3.0
        engine.run_until_idle()
        assert fired == ["a", "b"]

    def test_run_until_inclusive_of_boundary(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, fired.append, "edge")
        engine.run_until(3.0)
        assert fired == ["edge"]

    def test_run_until_past_deadline_rejected(self):
        engine = Engine(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.run_until(1.0)

    def test_run_for(self):
        engine = Engine()
        engine.run_for(10.0)
        assert engine.now == 10.0


class TestRunawayGuard:
    def test_max_events_guard_trips(self):
        engine = Engine()

        def rescheduler():
            engine.schedule(0.1, rescheduler)

        engine.schedule(0.1, rescheduler)
        with pytest.raises(SimulationError):
            engine.run_until_idle(max_events=100)

    def test_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        assert engine.processed == 5


class TestPeriodicTask:
    def test_fires_every_period(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now))
        task.start()
        engine.run_until(5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_ticks(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now))
        task.start()
        engine.run_until(2.5)
        task.stop()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_jitter_delays_first_tick(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now), jitter=0.5)
        task.start()
        engine.run_until(2.0)
        assert ticks == [1.5]

    def test_callback_may_stop_task(self):
        engine = Engine()
        ticks = []

        def tick():
            ticks.append(engine.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(engine, 1.0, tick)
        task.start()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Engine(), 0.0, lambda: None)

    def test_double_start_is_noop(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(1))
        task.start()
        task.start()
        engine.run_until(1.5)
        assert ticks == [1]


class TestPostFastPath:
    def test_post_and_schedule_interleave_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, fired.append, "timer")
        engine.post(1.0, fired.append, "msg-early")
        engine.post(3.0, fired.append, "msg-late")
        engine.run_until_idle()
        assert fired == ["msg-early", "timer", "msg-late"]

    def test_post_same_time_fifo_with_schedule(self):
        engine = Engine()
        fired = []
        engine.post(1.0, fired.append, "a")
        engine.schedule(1.0, fired.append, "b")
        engine.post(1.0, fired.append, "c")
        engine.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_post_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().post(-0.1, lambda: None)

    def test_post_at_in_past_rejected(self):
        engine = Engine()
        engine.post(1.0, lambda: None)
        engine.run_until_idle()
        with pytest.raises(SimulationError):
            engine.post_at(0.5, lambda: None)

    def test_posted_events_respect_run_until_and_step(self):
        engine = Engine()
        fired = []
        engine.post(1.0, fired.append, "a")
        engine.post(2.0, fired.append, "b")
        assert engine.step() is True
        assert fired == ["a"]
        engine.run_until(5.0)
        assert fired == ["a", "b"]
        assert engine.processed == 2


class TestCancelledAccounting:
    def test_live_pending_excludes_cancelled(self):
        engine = Engine()
        handles = [engine.schedule(1.0, lambda: None) for _ in range(10)]
        engine.post(1.0, lambda: None)
        assert engine.pending == 11
        assert engine.live_pending == 11
        for handle in handles[:4]:
            handle.cancel()
        assert engine.pending == 11
        assert engine.live_pending == 7
        assert engine.cancelled_pending == 4

    def test_double_cancel_counted_once(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.cancelled_pending == 1
        assert engine.live_pending == 0

    def test_cancel_after_fire_not_counted(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        handle.cancel()
        assert engine.cancelled_pending == 0
        assert engine.pending == 0

    def test_popping_cancelled_events_decrements_counter(self):
        engine = Engine()
        keep = []
        handle = engine.schedule(1.0, keep.append, "x")
        handle.cancel()
        engine.schedule(2.0, keep.append, "y")
        engine.run_until_idle()
        assert keep == ["y"]
        assert engine.cancelled_pending == 0
        assert engine.live_pending == 0


class TestHeapCompaction:
    def test_compact_reclaims_cancelled_events(self):
        engine = Engine()
        handles = [engine.schedule(1.0 + i, lambda: None) for i in range(100)]
        for handle in handles:
            handle.cancel()
        # Auto-compaction fires once cancelled events exceed both the
        # floor and half the queue: the heap must physically shrink, and
        # the books must balance (pending = live + cancelled).
        assert engine.pending < 100
        assert engine.live_pending == 0
        assert engine.pending == engine.cancelled_pending
        engine.compact()
        assert engine.pending == 0

    def test_compaction_preserves_live_events_and_order(self):
        engine = Engine()
        fired = []
        live = [engine.schedule(10.0 + i, fired.append, i) for i in range(5)]
        doomed = [engine.schedule(1.0 + i, fired.append, 1000 + i) for i in range(200)]
        for handle in doomed:
            handle.cancel()
        assert engine.pending < len(live) + len(doomed)  # auto-compacted
        assert engine.live_pending == len(live)
        engine.run_until_idle()
        assert fired == [0, 1, 2, 3, 4]

    def test_small_queues_not_compacted(self):
        engine = Engine()
        handles = [engine.schedule(1.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the floor the cancelled events stay parked (lazy removal).
        assert engine.pending == 10
        assert engine.live_pending == 0
        assert engine.compact() == 10
        assert engine.pending == 0

    def test_explicit_compact_mid_run(self):
        engine = Engine()
        fired = []

        def cancel_and_compact():
            for handle in doomed:
                handle.cancel()
            engine.compact()
            fired.append("compacted")

        engine.schedule(1.0, cancel_and_compact)
        doomed = [engine.schedule(5.0, fired.append, "doomed") for _ in range(50)]
        engine.schedule(9.0, fired.append, "tail")
        engine.run_until_idle()
        assert fired == ["compacted", "tail"]


class TestBucketQueue:
    """Edge cases of the per-timestamp bucket layout (the calendar queue)."""

    def test_far_future_timer_overflows_past_near_buckets(self):
        """A timer far beyond the active timestamps sits in the overflow
        (timestamp heap) and fires last, surviving many near buckets."""
        engine = Engine()
        fired = []
        engine.schedule(1_000_000.0, fired.append, "far")

        def hop(i):
            fired.append(i)
            if i < 50:
                engine.post(0.001, hop, i + 1)

        engine.post(0.001, hop, 0)
        engine.run_until_idle()
        assert fired == list(range(51)) + ["far"]
        assert engine.now == 1_000_000.0

    def test_far_future_timer_not_touched_by_run_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1_000_000.0, fired.append, "far")
        engine.post(1.0, fired.append, "near")
        engine.run_until(10.0)
        assert fired == ["near"]
        assert engine.live_pending == 1
        engine.run_until_idle()
        assert fired == ["near", "far"]

    def test_same_tick_fifo_across_posts_and_timers(self):
        """Events at one instant fire in scheduling order regardless of
        which API queued them — the exact order the old (time, seq) heap
        guaranteed."""
        engine = Engine()
        fired = []
        engine.post(1.0, fired.append, "p0")
        engine.schedule(1.0, fired.append, "t0")
        engine.post(1.0, fired.append, "p1")
        engine.schedule(1.0, fired.append, "t1")
        engine.post(1.0, fired.append, "p2")
        engine.run_until_idle()
        assert fired == ["p0", "t0", "p1", "t1", "p2"]

    def test_zero_delay_post_during_drain_fires_at_same_instant(self):
        """A delay-0 post from a callback lands after the current bucket
        but before any later timestamp, at an unchanged clock."""
        engine = Engine()
        fired = []

        def first():
            fired.append(("first", engine.now))
            engine.post(0.0, nested)

        def nested():
            fired.append(("nested", engine.now))

        engine.post(1.0, first)
        engine.post(1.0, fired.append, ("sibling", None))
        engine.post(2.0, fired.append, ("later", None))
        engine.run_until_idle()
        assert fired == [
            ("first", 1.0), ("sibling", None), ("nested", 1.0), ("later", None),
        ]

    def test_cancel_then_compact_preserves_survivor_order(self):
        """Compaction removes cancelled entries from every bucket without
        perturbing the firing order of the survivors."""
        engine = Engine()
        fired = []
        doomed = []
        survivors = []
        for i in range(100):
            when = 1.0 + (i % 5)  # five buckets, interleaved entries
            doomed.append(engine.schedule(when, fired.append, ("doomed", i)))
            survivors.append(engine.schedule(when, fired.append, i))
        for handle in doomed:
            handle.cancel()
        removed = engine.compact()
        assert removed > 0
        assert engine.cancelled_pending == 0
        assert engine.pending == 100
        engine.run_until_idle()
        # Survivors fire grouped by bucket (when), FIFO inside each.
        expected = [i for offset in range(5) for i in range(offset, 100, 5)]
        assert fired == expected

    def test_compact_drops_empty_buckets_from_overflow(self):
        engine = Engine()
        handles = [engine.schedule(10.0 + i, lambda: None) for i in range(50)]
        keeper = engine.schedule(5.0, lambda: None)
        for handle in handles:
            handle.cancel()
        engine.compact()
        assert engine.pending == 1
        assert engine.live_pending == 1
        engine.run_until_idle()
        assert engine.now == keeper.time

    def test_cancel_compact_inside_bucket_being_drained(self):
        """Cancelling and compacting from a callback while later entries of
        the *same* bucket are still queued must skip them correctly."""
        engine = Engine()
        fired = []

        def killer():
            for handle in doomed:
                handle.cancel()
            engine.compact()
            fired.append("killer")

        engine.schedule(1.0, killer)
        doomed = [engine.schedule(1.0, fired.append, "doomed") for _ in range(80)]
        engine.schedule(1.0, fired.append, "tail")
        engine.run_until_idle()
        assert fired == ["killer", "tail"]
        assert engine.pending == 0
        assert engine.cancelled_pending == 0

    def test_runaway_guard_keeps_unfired_remainder_queued(self):
        """Tripping max_events mid-bucket must not lose the queued tail."""
        engine = Engine()
        fired = []
        for i in range(10):
            engine.post(1.0, fired.append, i)
        with pytest.raises(SimulationError, match="runaway"):
            engine.run_until_idle(max_events=5)
        assert fired == list(range(6))  # the guard trips on event 6
        assert engine.live_pending == 4
        engine.run_until_idle()
        assert fired == list(range(10))
        assert engine.pending == 0

    def test_pickle_round_trip_preserves_queue(self):
        engine = Engine()
        engine.post(1.0, print, "x")  # top-level callable: picklable
        engine.post(1.0, print, "y")
        engine.schedule(2.0, print, "z")
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.pending == 3
        assert clone.live_pending == 3

    def test_hot_bucket_cache_never_pickled(self):
        """The hot-bucket cache is a pure accelerator: it is dropped on
        pickling, so snapshot bytes are a fixed point of the round trip
        and a thawed engine starts with a cold cache."""
        engine = Engine()
        engine.post(1.0, print, "x")
        engine.post(1.0, print, "y")  # leaves the hot cache set
        assert engine._hot_time is not None
        frozen = pickle.dumps(engine)
        thawed = pickle.loads(frozen)
        assert thawed._hot_time is None
        assert thawed._hot_bucket is None
        assert pickle.dumps(thawed) == frozen
        # And the thawed copy still accepts hot-path posts correctly.
        thawed.post(1.0, print, "z")
        assert thawed.pending == 3

    def test_events_fired_total_advances(self):
        before = events_fired_total()
        engine = Engine()
        for _ in range(7):
            engine.post(1.0, lambda: None)
        engine.run_until_idle()
        assert events_fired_total() - before == 7


def _reference_order(operations):
    """Replay (delay, cancel_after) operations on a (time, seq) heap —
    the pre-bucket-queue reference semantics."""
    queue = []
    seq = count()
    fired = []
    handles = {}
    for index, (delay, cancel) in enumerate(operations):
        heapq.heappush(queue, (delay, next(seq), index))
        handles[index] = cancel
    while queue:
        _, _, index = heapq.heappop(queue)
        if not handles[index]:
            fired.append(index)
    return fired


class TestOrderEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 30.0]),
                st.booleans(),
            ),
            max_size=60,
        )
    )
    def test_bucket_queue_matches_reference_heap_order(self, operations):
        """Mixed post/schedule/cancel traffic fires in exactly the order
        the old mixed-tuple heap produced."""
        engine = Engine()
        fired = []
        for index, (delay, cancel) in enumerate(operations):
            if cancel:
                engine.schedule(delay, fired.append, index).cancel()
            elif index % 2:
                engine.schedule(delay, fired.append, index)
            else:
                engine.post(delay, fired.append, index)
        engine.run_until_idle()
        assert fired == _reference_order(operations)
        assert engine.pending == engine.cancelled_pending


class TestCompactionBackoff:
    def test_mass_same_instant_cancels_do_not_rescan_per_cancel(self):
        """Cancelling many handles of the bucket currently being drained
        must not trigger a full (and futile) compaction per cancel: the
        watermark backs off exponentially when nothing was reclaimable."""
        engine = Engine()
        compactions = []
        original = engine.compact

        def counting_compact():
            compactions.append(engine.cancelled_pending)
            return original()

        engine.compact = counting_compact

        def cancel_all():
            for handle in doomed:
                handle.cancel()

        engine.schedule(1.0, cancel_all)
        doomed = [engine.schedule(1.0, lambda: None) for _ in range(2000)]
        engine.run_until_idle()
        # O(log N) rebuild attempts, not one per cancel past the floor.
        assert len(compactions) <= 12
        assert engine.pending == 0
        assert engine.cancelled_pending == 0

    def test_watermark_resets_after_clean_sweep(self):
        engine = Engine()
        handles = [engine.schedule(1.0 + i, lambda: None) for i in range(200)]
        for handle in handles:
            handle.cancel()  # reachable: auto-compaction sweeps most away
        engine.compact()  # sweep the sub-floor remainder
        assert engine.cancelled_pending == 0
        assert engine._compact_watermark == 64  # back at COMPACTION_FLOOR
