"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Engine, PeriodicTask


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, fired.append, "c")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        engine.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = Engine()
        fired = []
        for label in "abcde":
            engine.schedule(1.0, fired.append, label)
        engine.run_until_idle()
        assert fired == list("abcde")

    def test_time_advances_to_event_timestamps(self):
        engine = Engine()
        seen = []
        engine.schedule(2.5, lambda: seen.append(engine.now))
        engine.schedule(7.25, lambda: seen.append(engine.now))
        engine.run_until_idle()
        assert seen == [2.5, 7.25]

    def test_nested_scheduling(self):
        engine = Engine()
        fired = []

        def outer():
            fired.append("outer")
            engine.schedule(1.0, lambda: fired.append("inner"))

        engine.schedule(1.0, outer)
        engine.run_until_idle()
        assert fired == ["outer", "inner"]
        assert engine.now == 2.0

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=50))
    def test_firing_order_is_sorted_property(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda d=delay: fired.append(d))
        engine.run_until_idle()
        assert fired == sorted(delays)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, fired.append, "x")
        handle.cancel()
        assert handle.cancelled
        engine.run_until_idle()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        handle.cancel()  # must not raise

    def test_cancelled_events_do_not_count_as_fired(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        handle.cancel()
        assert engine.run_until_idle() == 1


class TestRunUntil:
    def test_run_until_stops_at_deadline(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(5.0, fired.append, "b")
        engine.run_until(3.0)
        assert fired == ["a"]
        assert engine.now == 3.0
        engine.run_until_idle()
        assert fired == ["a", "b"]

    def test_run_until_inclusive_of_boundary(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, fired.append, "edge")
        engine.run_until(3.0)
        assert fired == ["edge"]

    def test_run_until_past_deadline_rejected(self):
        engine = Engine(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.run_until(1.0)

    def test_run_for(self):
        engine = Engine()
        engine.run_for(10.0)
        assert engine.now == 10.0


class TestRunawayGuard:
    def test_max_events_guard_trips(self):
        engine = Engine()

        def rescheduler():
            engine.schedule(0.1, rescheduler)

        engine.schedule(0.1, rescheduler)
        with pytest.raises(SimulationError):
            engine.run_until_idle(max_events=100)

    def test_processed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run_until_idle()
        assert engine.processed == 5


class TestPeriodicTask:
    def test_fires_every_period(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now))
        task.start()
        engine.run_until(5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_ticks(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now))
        task.start()
        engine.run_until(2.5)
        task.stop()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_jitter_delays_first_tick(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(engine.now), jitter=0.5)
        task.start()
        engine.run_until(2.0)
        assert ticks == [1.5]

    def test_callback_may_stop_task(self):
        engine = Engine()
        ticks = []

        def tick():
            ticks.append(engine.now)
            if len(ticks) == 2:
                task.stop()

        task = PeriodicTask(engine, 1.0, tick)
        task.start()
        engine.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_invalid_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Engine(), 0.0, lambda: None)

    def test_double_start_is_noop(self):
        engine = Engine()
        ticks = []
        task = PeriodicTask(engine, 1.0, lambda: ticks.append(1))
        task.start()
        task.start()
        engine.run_until(1.5)
        assert ticks == [1]
