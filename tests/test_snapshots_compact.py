"""Compact snapshot encoding: blob size, byte-identity, replay fidelity.

The tentpole claim of the snapshot rework: replacing each stream's pickled
``random.Random`` state (~2.5 KB) with its ``(seed, words-consumed)`` pair
shrinks ``Scenario.freeze()`` blobs by >= 5x at paper scale — verified here
on a scaled-down proxy — while freeze/thaw stays a behavioural no-op.
"""

from __future__ import annotations

import io
import pickle
import random

from repro.common.rng import StreamRandom
from repro.experiments.failures import stabilized_scenario
from repro.experiments.params import ExperimentParams
from repro.experiments.scenario import Scenario
from repro.experiments.snapshots import SnapshotCache

PROXY = ExperimentParams.scaled(150, seed=11, stabilization_cycles=8)


def _legacy_freeze(scenario: Scenario) -> bytes:
    """Freeze with the pre-compact encoding: full MT state per stream.

    Reproduces what ``pickle`` emitted before :class:`StreamRandom` — the
    624-word generator state instead of the (seed, words) pair — via a
    dispatch-table override, so the size comparison needs no old checkout.
    """
    buffer = io.BytesIO()
    pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)
    pickler.dispatch_table = {
        StreamRandom: lambda stream: (random.Random, (), stream.getstate())
    }
    pickler.dump(scenario)
    return buffer.getvalue()


class TestBlobSize:
    def test_compact_encoding_shrinks_blobs_5x(self):
        """The acceptance criterion, on the scaled-down proxy: compact
        blobs are >= 5x smaller than the full-RNG-state encoding."""
        scenario = stabilized_scenario("hyparview", PROXY)
        compact = scenario.freeze()
        legacy = _legacy_freeze(scenario)
        ratio = len(legacy) / len(compact)
        assert ratio >= 5.0, f"only {ratio:.1f}x smaller ({len(legacy)} -> {len(compact)})"

    def test_per_node_footprint_is_small(self):
        scenario = stabilized_scenario("hyparview", PROXY)
        blob = scenario.freeze()
        # Three streams/node at ~2.5 KB each used to put the floor above
        # 7.5 KB/node; the compact encoding fits node + protocol state in
        # a fraction of that.
        assert len(blob) / PROXY.n < 2500


class TestFreezeThawByteIdentity:
    def test_streams_refreeze_byte_identically(self):
        """Every RNG stream in a thawed scenario re-encodes to exactly the
        bytes it was frozen from — the (seed, words) pair is a fixed point
        of the round trip, with no drift in offsets across trips.

        (Whole-blob equality is deliberately not asserted: pickling
        oscillates by a few memo/set-iteration bytes that predate the
        compact encoding and are invisible to behaviour; the snapshot
        cache guarantees identity by handing out one blob, and artifact
        identity is pinned end-to-end elsewhere.)
        """
        scenario = stabilized_scenario("cyclon", PROXY)

        def stream_bytes(s: Scenario) -> dict:
            blobs = {"harness": pickle.dumps(s._rng), "network": pickle.dumps(s.network._rng)}
            for node_id, node in s.nodes.items():
                blobs[f"node/{node_id}"] = pickle.dumps(node.rng)
                blobs[f"membership/{node_id}"] = pickle.dumps(
                    s.membership(node_id)._rng
                )
            return blobs

        original = stream_bytes(scenario)
        thawed = Scenario.thaw(scenario.freeze())
        assert stream_bytes(thawed) == original
        again = Scenario.thaw(thawed.freeze())
        assert stream_bytes(again) == original

    def test_snapshot_cache_checkouts_unaffected_by_compact_encoding(self):
        """Hit and miss still hand out byte-identical state."""
        cache = SnapshotCache()
        miss = cache.frozen("hyparview", PROXY)
        hit = cache.frozen("hyparview", PROXY)
        assert miss == hit
        assert cache.stats()["hits"] == 1

    def test_thawed_randomness_matches_unfrozen_continuation(self):
        """The replayed streams continue bit-identically: a thawed copy
        and the never-frozen original produce the same failures, the same
        traffic and the same measurements."""
        original = stabilized_scenario("cyclon", PROXY)
        thawed = Scenario.thaw(original.freeze())
        assert original.fail_fraction(0.4) == thawed.fail_fraction(0.4)
        a = [s.reliability for s in original.send_broadcasts(3)]
        b = [s.reliability for s in thawed.send_broadcasts(3)]
        assert a == b
        original.run_cycles(2)
        thawed.run_cycles(2)
        edges_a = {n: original.membership(n).out_neighbors() for n in original.node_ids}
        edges_b = {n: thawed.membership(n).out_neighbors() for n in thawed.node_ids}
        assert edges_a == edges_b
